//! Batched structure-of-arrays mega-kernel: the Algorithm 1/2 dynamic
//! program over **many same-shape instances in lockstep**.
//!
//! The lane-chunked kernel of [`crate::algo1`] vectorizes *within* one solve:
//! its fixed-width `[f64; LANES]` window holds LANES *states* of one
//! instance. At batch scale the win is vectorizing *across* solves: this
//! module runs up to [`LANES`] homogeneous instances of near-identical shape
//! (same processor count `p` and replication bound `K`, possibly differing
//! task counts `n`, differing work/failure/speed numerics) through the same
//! recurrence simultaneously, one instance per SIMD lane.
//!
//! # Near-shape lane padding
//!
//! Lanes need not share the task count: arenas are sized for the longest
//! lane (`n_max`), and a shorter lane simply stops participating past its
//! own final row. The gather NaN-poisons a finished lane's columns
//! ([`IntervalOracle::fill_class_block_row_lanes`]), its row liveness goes
//! false (so its candidates are masked exactly like a period-excluded row),
//! its DP rows past its own `n` stay at the `−∞` sentinel, and its finish
//! reads the best final state at row `n_lane`, not `n_max`. Results are
//! therefore bit-identical to the same-shape case; the only cost is the
//! dead arena slack, which the `dp.batch.padded_lanes` counter reports.
//!
//! # Lane-major layout
//!
//! Every arena of [`BatchScratch`] is **lane-major**: the values of one DP
//! state across all instances are contiguous, so the state is addressed
//! first and the instance lane second —
//!
//! * value arena: `f[(i·(p+1) + k)·LANES + lane]`,
//! * gather rows: `blocks[(first − first_lo)·LANES + lane]`
//!   ([`IntervalOracle::fill_class_block_row_lanes`], one call per row for
//!   the whole batch),
//! * replicated reliabilities: `rels[(idx·K + q−1)·LANES + lane]` for the
//!   `idx`-th admissible interval start of the row.
//!
//! The inner max-update then loads one `[f64; LANES]` window per state —
//! *one state across LANES instances* — and folds every replication level
//! into it with plain multiply-and-max bodies that LLVM auto-vectorizes,
//! exactly like the single-instance kernel but with the per-row control flow
//! (bounds checks, admissibility binary searches, gather bookkeeping) paid
//! **once per batch** instead of once per instance.
//!
//! # Masking rules
//!
//! Lanes diverge only through admissibility: a period-bounded lane can
//! exclude an interval start (or a whole row) that other lanes admit. The
//! kernel realizes the per-lane "−∞ mask" by **NaN-poisoning the masked
//! lane's replicated reliabilities**: a masked candidate `f·NaN` is `NaN`,
//! and the kernel's `cand > val` select is always false for `NaN`, so the
//! masked lane's state is left untouched. (A literal `−∞` reliability would
//! be unsafe — `(−∞ predecessor)·(−∞ rel) = +∞` would *win* the max — and a
//! `0.0` reliability would falsely mark unreachable states reachable with
//! value `0`.) Masks are computed once per `(row, start, lane)` outside the
//! hot state loop; the value arena itself never holds a `NaN`.
//!
//! Feasibility falls out of the same rule: a lane whose every candidate is
//! masked keeps its `−∞` sentinels and reports `None`, exactly as the
//! single-instance bounded DP does.
//!
//! # Traceback
//!
//! The hot loop is value-only. After the sweep, each lane's winning `(j, q)`
//! choices are recovered post hoc by bit-exact candidate re-scan **in sweep
//! order** (descending `j`, ascending `q`, first equality wins), exactly as
//! [`crate::algo1`]'s chunked kernel does — the gathered blocks and the
//! `(1 − block)^q` accumulation are reproduced operation for operation, so
//! the recovered mappings are identical to the per-instance kernel's.
//!
//! # Register-blocked fold: verdict
//!
//! Two inner sweeps are implemented ([`BatchInner`]): the straight
//! **lockstep** sweep (boundary-outer: for each admissible start `j`, one
//! pass over its state window) and a **register-blocked** fold — the PR 3
//! experiment retried inside the SoA layout, where it finally pays off.
//! The fold is chunk-outer/boundary-inner: a block of [`WIDE_BLOCK`]
//! lane-wide state accumulators is loaded into vector registers once,
//! *every* `(j, q)` candidate of the row is folded into the block, and it
//! is stored once; per boundary, the `WIDE_BLOCK + 2` distinct predecessor
//! windows are also loaded once and shared across all `(state, q)`
//! combinations, so each candidate costs roughly one multiply and one max
//! from registers instead of three memory operations. Out-of-window
//! candidates read `−∞` sentinels and lose naturally, and the replication
//! cap is monomorphized for the paper-scale `K ≤ 3` so the level loop
//! fully unrolls. Measured on the `BENCH_kernel.json` workload (512
//! homogeneous instances, n=100, p=20, single-core AVX-512 host), the
//! blocked fold's update phase runs the same candidate set ~3.5× faster
//! than the lockstep sweep (10.9 ms vs 37.9 ms per pass; whole batch
//! 21.7 ms vs 48.1 ms) — inside the SoA layout the per-boundary bounds
//! checks that killed the PR 3 attempt are amortized across eight lanes,
//! and register-resident accumulators eliminate the sweep's dominant
//! load/store traffic. The blocked fold is therefore the default; the
//! lockstep sweep is kept behind [`BatchInner::Lockstep`] as the simpler
//! reference implementation and differential-test ballast.

use rpo_model::{Interval, IntervalOracle, MappedInterval, Mapping, Platform, TaskChain};

use crate::algo1::{OptimalMapping, LANES};

/// One instance of a same-shape batch: its prebuilt oracle, the chain and
/// platform it was built from, and the optional Algorithm 2 period bound
/// (`None` runs the unbounded Algorithm 1 recurrence for this lane).
#[derive(Debug, Clone, Copy)]
pub struct BatchLane<'a> {
    /// The instance's prebuilt interval oracle.
    pub oracle: &'a IntervalOracle,
    /// The task chain the oracle was built from.
    pub chain: &'a TaskChain,
    /// The (homogeneous) platform the oracle was built from.
    pub platform: &'a Platform,
    /// Worst-case period bound (Algorithm 2), or `None` for Algorithm 1.
    pub period_bound: Option<f64>,
}

/// Which inner max-update sweep the batch kernel runs; see the
/// [module docs](self) for the measured verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchInner {
    /// Boundary-outer lockstep sweep (simple reference implementation and
    /// differential-test ballast).
    Lockstep,
    /// Chunk-outer/boundary-inner register-blocked fold with wide
    /// register-resident accumulator blocks (the default: ~2.2× faster
    /// end to end on the reference stream).
    #[default]
    Blocked,
}

/// Reusable lane-major arenas of the batched DP: the SoA growth of
/// [`crate::DpScratch`]'s flat single-instance arenas. Buffers are sized
/// lazily per chunk and keep their capacity across [`Self::reset`].
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Lane-major value arena: `f[(i·stride + k)·LANES + lane]`.
    f: Vec<f64>,
    /// Lane-major per-row gather of factored replica-block reliabilities.
    blocks: Vec<f64>,
    /// Lane-major replicated reliabilities per admissible start and level
    /// (`NaN` = masked lane; see the module docs).
    rels: Vec<f64>,
    /// Per-row compacted interval starts admissible in at least one lane,
    /// descending.
    adm: Vec<u32>,
    /// Lane-major incoming-communication admissibility per interval start.
    in_ok: Vec<bool>,
    /// Single-lane gather buffer for the post-hoc traceback re-scan.
    row: Vec<f64>,
}

impl BatchScratch {
    /// Fresh scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Clears every instance-specific datum while keeping the allocated
    /// capacity of all arenas, so one scratch can be reused across buckets.
    pub fn reset(&mut self) {
        self.f.clear();
        self.blocks.clear();
        self.rels.clear();
        self.adm.clear();
        self.in_ok.clear();
        self.row.clear();
    }
}

/// Runs the Algorithm 1/2 dynamic program over a batch of same-shape
/// homogeneous instances in lockstep, one instance per SIMD lane, returning
/// each lane's optimal mapping (`None` = infeasible under its bound) in
/// input order.
///
/// Results are bit-identical to running [`crate::reliability_dp_with_scratch`]
/// with the chunked kernel per instance: same feasibility verdicts, same DP
/// values, same reconstructed mappings (the workspace differential suite
/// asserts exactly that). Batches larger than [`LANES`] are processed in
/// chunks of `LANES`; partial chunks run with the dead lanes masked.
///
/// # Panics
///
/// Panics if any lane's platform is heterogeneous or its shape
/// `(p, k_max)` differs from the first lane's (task counts may differ:
/// shorter lanes run padded; see the module docs).
pub fn solve_batch(
    lanes: &[BatchLane<'_>],
    scratch: &mut BatchScratch,
) -> Vec<Option<OptimalMapping>> {
    solve_batch_with_inner(lanes, BatchInner::default(), scratch)
}

/// [`solve_batch`] with an explicit inner-sweep choice (the measurement and
/// equivalence-testing entry point; see [`BatchInner`]).
pub fn solve_batch_with_inner(
    lanes: &[BatchLane<'_>],
    inner: BatchInner,
    scratch: &mut BatchScratch,
) -> Vec<Option<OptimalMapping>> {
    let mut out = Vec::with_capacity(lanes.len());
    for chunk in lanes.chunks(LANES) {
        solve_chunk(chunk, inner, scratch, &mut out);
    }
    out
}

/// One lockstep chunk of at most [`LANES`] instances.
fn solve_chunk(
    chunk: &[BatchLane<'_>],
    inner: BatchInner,
    scratch: &mut BatchScratch,
    out: &mut Vec<Option<OptimalMapping>>,
) {
    let width = chunk.len();
    let lead = &chunk[0];
    let p = lead.oracle.num_processors();
    let k_max = lead.oracle.max_replication().min(p);
    let stride = p + 1;
    // Near-shape padding: lanes must agree on (p, k_max) but may differ in
    // task count. Arenas are sized for the longest lane; shorter lanes run
    // padded — their rows past their own n stay −∞ (their candidates are
    // NaN-masked), and each lane finishes at its *own* final row.
    let n_max = chunk
        .iter()
        .map(|lane| lane.oracle.len())
        .max()
        .expect("chunks are non-empty");
    let padded = chunk
        .iter()
        .filter(|lane| lane.oracle.len() < n_max)
        .count();
    let _span = rpo_obs::span!("dp.batch_kernel", rows = n_max, procs = p, lanes = width);
    rpo_obs::counter!("dp.batch.lanes_occupied").add(width as u64);
    rpo_obs::counter!("dp.batch.padded_lanes").add(padded as u64);
    rpo_obs::histogram!("batch.lane_occupancy").record_nanos(width as u64);
    assert!(
        k_max <= 0xFF && n_max < (1 << 24),
        "packed traceback supports K ≤ 255 and n < 2^24"
    );
    for lane in chunk {
        assert!(
            lane.oracle.is_homogeneous(),
            "the batch kernel requires homogeneous lanes"
        );
        assert!(
            lane.oracle.num_processors() == p && lane.oracle.max_replication().min(p) == k_max,
            "every lane of a batch must share the (p, k_max) shape"
        );
    }

    // Pad the gather set to full width with the last real lane; padded lanes
    // are masked everywhere (`active`), so their gathered values are dead.
    let oracles: Vec<&IntervalOracle> = (0..LANES)
        .map(|lane| chunk[lane.min(width - 1)].oracle)
        .collect();
    let mut bounds = [f64::INFINITY; LANES];
    let mut speeds = [1.0f64; LANES];
    let mut active = [false; LANES];
    let mut ns = [0usize; LANES];
    for (lane, instance) in chunk.iter().enumerate() {
        bounds[lane] = instance.period_bound.unwrap_or(f64::INFINITY);
        speeds[lane] = instance.oracle.classes()[0].speed;
        active[lane] = true;
        ns[lane] = instance.oracle.len();
    }

    scratch.f.clear();
    scratch
        .f
        .resize((n_max + 1) * stride * LANES, f64::NEG_INFINITY);
    for lane in 0..width {
        scratch.f[lane] = 1.0; // state (i=0, k=0), per lane
    }
    scratch.in_ok.clear();
    for j in 0..n_max {
        for lane in 0..LANES {
            scratch.in_ok.push(
                active[lane] && j < ns[lane] && oracles[lane].input_comm_time(j) <= bounds[lane],
            );
        }
    }

    // Full-width equal-length chunk with no period bound anywhere: every
    // (start, lane) candidate is admissible, so the per-row masking
    // machinery (liveness, per-lane cuts, NaN poisoning) is dead weight —
    // the compaction takes a branch-free vectorized fast path instead.
    let unmasked = width == LANES
        && chunk
            .iter()
            .all(|lane| lane.period_bound.is_none() && lane.oracle.len() == n_max);

    for i in 1..=n_max {
        // Per-lane row liveness and first admissible start (the bounded
        // lanes' work-prefix cuts, exactly as the single-instance sweep
        // derives them: a conservative binary-search point minus one, with
        // the exact per-start division re-check below).
        let mut row_live = [false; LANES];
        let mut j_lo = [0usize; LANES];
        let mut first_lo = usize::MAX;
        let mut any_live = false;
        if unmasked {
            row_live = [true; LANES];
            first_lo = 0;
            any_live = true;
        } else {
            for lane in 0..LANES {
                if !active[lane] || i > ns[lane] {
                    continue; // dead or padded-out lane: row stays −∞
                }
                let oracle = oracles[lane];
                if oracle.output_comm_time(i - 1) > bounds[lane] {
                    continue;
                }
                row_live[lane] = true;
                any_live = true;
                let lo = if bounds[lane].is_finite() {
                    let work_prefix = oracle.work_prefix();
                    let target = work_prefix[i] - bounds[lane] * speeds[lane];
                    work_prefix[..i]
                        .partition_point(|&w| w < target)
                        .saturating_sub(1)
                } else {
                    0
                };
                j_lo[lane] = lo;
                first_lo = first_lo.min(lo);
            }
        }
        if !any_live {
            continue;
        }

        // Gather phase: one lane-major call fills the row for every lane.
        IntervalOracle::fill_class_block_row_lanes(
            &oracles,
            0,
            i - 1,
            first_lo,
            &mut scratch.blocks,
        );

        // Compaction: starts admissible in at least one lane, descending,
        // with lane-major replicated reliabilities (`NaN` = masked lane).
        scratch.adm.clear();
        scratch.rels.clear();
        if unmasked {
            // Branch-free fast path: every start is admissible in every
            // lane, so the replicated reliabilities are straight-line
            // lane-wide arithmetic into a pre-sized buffer (identical
            // values, multiplication for multiplication, to the masked
            // loop below).
            scratch.adm.extend((0..i as u32).rev());
            scratch.rels.resize(i * k_max * LANES, 0.0);
            let mut idx = 0;
            for j in (0..i).rev() {
                let base = j * LANES;
                let block: [f64; LANES] = scratch.blocks[base..base + LANES]
                    .try_into()
                    .expect("lane-width gather row");
                let mut all_fail = [1.0f64; LANES];
                for _q in 0..k_max {
                    let dst = &mut scratch.rels[idx..idx + LANES];
                    for lane in 0..LANES {
                        all_fail[lane] *= 1.0 - block[lane];
                        dst[lane] = 1.0 - all_fail[lane];
                    }
                    idx += LANES;
                }
            }
        } else {
            compact_masked(
                scratch, &oracles, &bounds, &speeds, &row_live, &j_lo, first_lo, i, k_max,
            );
        }
        if scratch.adm.is_empty() {
            continue;
        }

        // Max-update: predecessor rows all live before row i in the arena.
        let (done, rest) = scratch.f.split_at_mut(i * stride * LANES);
        let row_i = &mut rest[..stride * LANES];
        match inner {
            BatchInner::Lockstep => {
                for (&j, jrels) in scratch
                    .adm
                    .iter()
                    .zip(scratch.rels.chunks_exact(k_max * LANES))
                {
                    let j = j as usize;
                    let row_j = &done[j * stride * LANES..(j + 1) * stride * LANES];
                    // The same shape-only state window as the per-instance
                    // kernel: j tasks occupy between 1 (j > 0) and min(p, j·K)
                    // processors.
                    let min_prev = usize::from(j > 0);
                    let max_prev = (j * k_max).min(p);
                    lockstep_update(row_j, row_i, min_prev + 1, (max_prev + k_max).min(p), jrels);
                }
            }
            BatchInner::Blocked => {
                blocked_update(done, row_i, &scratch.adm, &scratch.rels, stride, k_max, p);
            }
        }
    }

    // Per-lane finish: best final state (at the lane's *own* final row, not
    // the padded arena's), then post-hoc traceback.
    let BatchScratch { f, in_ok, row, .. } = scratch;
    for (lane, instance) in chunk.iter().enumerate() {
        out.push(finish_lane(instance, lane, f, in_ok, row, p, k_max));
    }
}

/// The masked (general-path) compaction of one DP row: starts admissible in
/// at least one lane, descending, with lane-major replicated reliabilities
/// (`NaN` = masked lane; see the module docs for why neither `−∞` nor `0.0`
/// is a safe mask).
#[allow(clippy::too_many_arguments)]
fn compact_masked(
    scratch: &mut BatchScratch,
    oracles: &[&IntervalOracle],
    bounds: &[f64; LANES],
    speeds: &[f64; LANES],
    row_live: &[bool; LANES],
    j_lo: &[usize; LANES],
    first_lo: usize,
    i: usize,
    k_max: usize,
) {
    for j in (first_lo..i).rev() {
        let mut lane_adm = [false; LANES];
        let mut any_adm = false;
        for lane in 0..LANES {
            if row_live[lane]
                && j >= j_lo[lane]
                && scratch.in_ok[j * LANES + lane]
                && (!bounds[lane].is_finite()
                    || oracles[lane].work(j, i - 1) / speeds[lane] <= bounds[lane])
            {
                lane_adm[lane] = true;
                any_adm = true;
            }
        }
        if !any_adm {
            continue;
        }
        scratch.adm.push(j as u32);
        let base = (j - first_lo) * LANES;
        let mut all_fail = [1.0f64; LANES];
        for _q in 0..k_max {
            for lane in 0..LANES {
                if lane_adm[lane] {
                    all_fail[lane] *= 1.0 - scratch.blocks[base + lane];
                    scratch.rels.push(1.0 - all_fail[lane]);
                } else {
                    scratch.rels.push(f64::NAN);
                }
            }
        }
    }
}

/// Lockstep max-update over one predecessor boundary `j`: for every state
/// `k ∈ [k_lo, k_hi]` and level `q`, fold
/// `row_j[(k−q)·LANES + lane] · rels[(q−1)·LANES + lane]` into the state's
/// `[f64; LANES]` window — one load and one store per state, every lane's
/// fold a plain multiply-and-max. `NaN` rels (masked lanes) lose every
/// comparison, so no per-lane control flow survives in the loop.
#[inline]
fn lockstep_update(row_j: &[f64], row_i: &mut [f64], k_lo: usize, k_hi: usize, jrels: &[f64]) {
    let k_max = jrels.len() / LANES;
    for k in k_lo..=k_hi {
        let base = k * LANES;
        let mut val: [f64; LANES] = row_i[base..base + LANES]
            .try_into()
            .expect("lane-width state window");
        for q in 1..=k_max.min(k) {
            let src_base = (k - q) * LANES;
            let src: [f64; LANES] = row_j[src_base..src_base + LANES]
                .try_into()
                .expect("lane-width state window");
            let rel = &jrels[(q - 1) * LANES..q * LANES];
            for lane in 0..LANES {
                let cand = src[lane] * rel[lane];
                val[lane] = if cand > val[lane] { cand } else { val[lane] };
            }
        }
        row_i[base..base + LANES].copy_from_slice(&val);
    }
}

/// States per wide register block of the blocked fold: `WIDE_BLOCK` lane-wide
/// accumulators plus `WIDE_BLOCK + 2` shared source windows stay in vector
/// registers across the whole boundary loop (18 of 32 zmm registers on
/// AVX-512; on AVX2's 16-register file the blocks spill to L1, which the
/// runtime-dispatched generic path avoids by staying narrower).
const WIDE_BLOCK: usize = 8;

/// States per tail register block of the blocked fold, mopping up what is
/// left after the wide blocks before the final single-state sweep.
const STATE_BLOCK: usize = 4;

/// Register-blocked fold (chunk-outer/boundary-inner): a block of
/// [`STATE_BLOCK`] states' accumulators is loaded once, every `(j, q)`
/// candidate of the row is folded into the block, and it is stored once —
/// each candidate costs one load/multiply/max instead of also re-loading
/// and re-storing the target state per boundary. Out-of-window candidates
/// read `−∞` predecessor sentinels and lose naturally, so no per-boundary
/// window logic is needed. The replication cap is monomorphized for the
/// paper-scale `K ≤ 3` so the level loop fully unrolls.
#[inline]
fn blocked_update(
    done: &[f64],
    row_i: &mut [f64],
    adm: &[u32],
    rels: &[f64],
    stride: usize,
    k_max: usize,
    p: usize,
) {
    match k_max {
        1 => blocked_update_const::<1>(done, row_i, adm, rels, stride, p),
        2 => blocked_update_const::<2>(done, row_i, adm, rels, stride, p),
        3 => blocked_update_const::<3>(done, row_i, adm, rels, stride, p),
        _ => blocked_update_generic(done, row_i, adm, rels, stride, k_max, p),
    }
}

/// The blocked fold at compile-time replication cap `KMAX`: wide register
/// blocks first, then a narrower tail, then single states.
#[inline]
fn blocked_update_const<const KMAX: usize>(
    done: &[f64],
    row_i: &mut [f64],
    adm: &[u32],
    rels: &[f64],
    stride: usize,
    p: usize,
) {
    let mut k0 = 1;
    while k0 + WIDE_BLOCK <= p + 1 {
        // S = B + KMAX − 1 source windows cover every (b, q) combination.
        blocked_fold::<KMAX, WIDE_BLOCK, { WIDE_BLOCK + 2 }>(done, row_i, adm, rels, stride, k0);
        k0 += WIDE_BLOCK;
    }
    while k0 + STATE_BLOCK <= p + 1 {
        blocked_fold::<KMAX, STATE_BLOCK, { STATE_BLOCK + 2 }>(done, row_i, adm, rels, stride, k0);
        k0 += STATE_BLOCK;
    }
    while k0 <= p {
        blocked_fold::<KMAX, 1, 3>(done, row_i, adm, rels, stride, k0);
        k0 += 1;
    }
}

/// Folds every `(j, q)` candidate of the compacted row into the `B` states
/// `k0 .. k0 + B`, whose accumulators live in vector registers across the
/// whole boundary loop. Per boundary, the `S = B + KMAX_CEIL − 1` distinct
/// predecessor windows `row_j[k0 − KMAX_CEIL .. k0 + B − 1]` are loaded
/// once and shared by all `(b, q)` combinations (source index
/// `b + KMAX_CEIL − q` is compile-time after unrolling); windows below
/// state 0 stay at the `−∞` sentinel and lose every comparison, as do
/// out-of-window candidates and `NaN`-masked lanes.
#[inline]
fn blocked_fold<const KMAX: usize, const B: usize, const S: usize>(
    done: &[f64],
    row_i: &mut [f64],
    adm: &[u32],
    rels: &[f64],
    stride: usize,
    k0: usize,
) {
    // KMAX_CEIL = 3 always (S = B + 2): levels above KMAX simply don't
    // exist in `rels`, so their source slots are loaded but never used.
    debug_assert!(KMAX <= 3 && S == B + 2);
    let mut acc = [[0.0f64; LANES]; B];
    for (b, state) in acc.iter_mut().enumerate() {
        let base = (k0 + b) * LANES;
        state.copy_from_slice(&row_i[base..base + LANES]);
    }
    for (&j, jrels) in adm.iter().zip(rels.chunks_exact(KMAX * LANES)) {
        let j = j as usize;
        let row_j = &done[j * stride * LANES..(j + 1) * stride * LANES];
        let mut src = [[f64::NEG_INFINITY; LANES]; S];
        for (idx, window) in src.iter_mut().enumerate() {
            // Window `idx` holds predecessor state k0 + idx − 3.
            if k0 + idx >= 3 {
                let base = (k0 + idx - 3) * LANES;
                window.copy_from_slice(&row_j[base..base + LANES]);
            }
        }
        for q in 1..=KMAX {
            let rel = &jrels[(q - 1) * LANES..q * LANES];
            for (b, state) in acc.iter_mut().enumerate() {
                let window = &src[b + 3 - q];
                for lane in 0..LANES {
                    let cand = window[lane] * rel[lane];
                    state[lane] = if cand > state[lane] {
                        cand
                    } else {
                        state[lane]
                    };
                }
            }
        }
    }
    for (b, state) in acc.iter().enumerate() {
        let base = (k0 + b) * LANES;
        row_i[base..base + LANES].copy_from_slice(state);
    }
}

/// Runtime-`k_max` fallback of the blocked fold (replication caps beyond
/// the monomorphized paper range), two states per block.
#[inline]
fn blocked_update_generic(
    done: &[f64],
    row_i: &mut [f64],
    adm: &[u32],
    rels: &[f64],
    stride: usize,
    k_max: usize,
    p: usize,
) {
    let mut k = 1;
    while k <= p {
        let pair = k < p;
        let base0 = k * LANES;
        let mut val0: [f64; LANES] = row_i[base0..base0 + LANES]
            .try_into()
            .expect("lane-width state window");
        let mut val1 = [f64::NEG_INFINITY; LANES];
        if pair {
            let base1 = (k + 1) * LANES;
            val1 = row_i[base1..base1 + LANES]
                .try_into()
                .expect("lane-width state window");
        }
        for (&j, jrels) in adm.iter().zip(rels.chunks_exact(k_max * LANES)) {
            let j = j as usize;
            let row_j = &done[j * stride * LANES..(j + 1) * stride * LANES];
            for q in 1..=k_max {
                let rel = &jrels[(q - 1) * LANES..q * LANES];
                if q <= k {
                    let src_base = (k - q) * LANES;
                    let src: [f64; LANES] = row_j[src_base..src_base + LANES]
                        .try_into()
                        .expect("lane-width state window");
                    for lane in 0..LANES {
                        let cand = src[lane] * rel[lane];
                        val0[lane] = if cand > val0[lane] { cand } else { val0[lane] };
                    }
                }
                if pair && q <= k + 1 {
                    let src_base = (k + 1 - q) * LANES;
                    let src: [f64; LANES] = row_j[src_base..src_base + LANES]
                        .try_into()
                        .expect("lane-width state window");
                    for lane in 0..LANES {
                        let cand = src[lane] * rel[lane];
                        val1[lane] = if cand > val1[lane] { cand } else { val1[lane] };
                    }
                }
            }
        }
        row_i[base0..base0 + LANES].copy_from_slice(&val0);
        if pair {
            let base1 = (k + 1) * LANES;
            row_i[base1..base1 + LANES].copy_from_slice(&val1);
        }
        k += 2;
    }
}

/// Per-lane finish: pick the best final state and rebuild the lane's
/// mapping by post-hoc candidate re-scan, mirroring the single-instance
/// kernel's traceback tail operation for operation.
#[allow(clippy::too_many_arguments)]
fn finish_lane(
    instance: &BatchLane<'_>,
    lane: usize,
    f: &[f64],
    in_ok: &[bool],
    row: &mut Vec<f64>,
    p: usize,
    k_max: usize,
) -> Option<OptimalMapping> {
    let stride = p + 1;
    let n = instance.oracle.len(); // the lane's own n, not the padded arena's
    let row_n = n * stride * LANES;
    let (best_k, best_rel) = (1..=p)
        .map(|k| (k, f[row_n + k * LANES + lane]))
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("totally ordered reliabilities")
        })?;
    if !best_rel.is_finite() {
        return None;
    }
    let oracle = instance.oracle;
    let bound = instance.period_bound.unwrap_or(f64::INFINITY);
    let speed = oracle.classes()[0].speed;
    let work_prefix = oracle.work_prefix();

    let mut segments: Vec<(usize, usize, usize)> = Vec::new(); // (first, last, replicas)
    let (mut i, mut k) = (n, best_k);
    while i > 0 {
        let j_lo = if bound.is_finite() {
            work_prefix[..i]
                .partition_point(|&w| w < work_prefix[i] - bound * speed)
                .saturating_sub(1)
        } else {
            0
        };
        oracle.fill_class_block_row(0, i - 1, j_lo, row);
        let target = f[(i * stride + k) * LANES + lane];
        let mut found = None;
        'scan: for j in (j_lo..i).rev() {
            if bound.is_finite()
                && (!in_ok[j * LANES + lane] || oracle.work(j, i - 1) / speed > bound)
            {
                continue;
            }
            let block = row[j - j_lo];
            let mut all_fail = 1.0;
            for q in 1..=k_max.min(k) {
                all_fail *= 1.0 - block;
                if f[(j * stride + (k - q)) * LANES + lane] * (1.0 - all_fail) == target {
                    found = Some((j, q));
                    break 'scan;
                }
            }
        }
        let (j, q) = found.expect("every reachable DP state has a winning candidate");
        segments.push((j, i - 1, q));
        i = j;
        k -= q;
    }
    segments.reverse();

    let mut next_processor = 0;
    let mapped = segments
        .into_iter()
        .map(|(first, last, q)| {
            let processors: Vec<usize> = (next_processor..next_processor + q).collect();
            next_processor += q;
            MappedInterval::new(Interval { first, last }, processors)
        })
        .collect();
    let mapping = Mapping::new(mapped, instance.chain, instance.platform)
        .expect("dynamic program only builds structurally valid mappings");
    let reliability = oracle.mapping_reliability(&mapping);
    Some(OptimalMapping {
        mapping,
        reliability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reliability_dp_with_kernel, DpKernel};
    use rpo_model::PlatformBuilder;

    fn chains() -> Vec<TaskChain> {
        vec![
            TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap(),
            TaskChain::from_pairs(&[(12.0, 1.0), (48.0, 4.0), (19.0, 6.0), (21.0, 2.0)]).unwrap(),
            TaskChain::from_pairs(&[(5.0, 9.0), (5.0, 9.0), (80.0, 0.5), (11.0, 7.0)]).unwrap(),
        ]
    }

    fn platform(rate: f64) -> Platform {
        PlatformBuilder::new()
            .identical_processors(5, 1.0, rate)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(3)
            .build()
            .unwrap()
    }

    #[test]
    fn batched_lanes_match_the_per_instance_kernel() {
        let chains = chains();
        let platforms: Vec<Platform> = [1e-3, 2e-3, 5e-4].iter().map(|&r| platform(r)).collect();
        let oracles: Vec<IntervalOracle> = chains
            .iter()
            .zip(&platforms)
            .map(|(c, p)| IntervalOracle::new(c, p))
            .collect();
        for bounds in [
            [None, None, None],
            [Some(45.0), None, Some(90.0)],
            [Some(30.0), Some(1e9), Some(5.0)],
        ] {
            let lanes: Vec<BatchLane<'_>> = (0..3)
                .map(|idx| BatchLane {
                    oracle: &oracles[idx],
                    chain: &chains[idx],
                    platform: &platforms[idx],
                    period_bound: bounds[idx],
                })
                .collect();
            for inner in [BatchInner::Lockstep, BatchInner::Blocked] {
                let mut scratch = BatchScratch::new();
                let batched = solve_batch_with_inner(&lanes, inner, &mut scratch);
                for (idx, lane) in lanes.iter().enumerate() {
                    let solo = reliability_dp_with_kernel(
                        lane.oracle,
                        lane.chain,
                        lane.platform,
                        lane.period_bound,
                        DpKernel::Chunked,
                    );
                    match (&batched[idx], &solo) {
                        (Some(a), Some(b)) => {
                            assert_eq!(a.reliability, b.reliability, "lane {idx} ({inner:?})");
                            assert_eq!(a.mapping, b.mapping, "lane {idx} ({inner:?})");
                        }
                        (None, None) => {}
                        (a, b) => panic!(
                            "lane {idx} feasibility mismatch ({inner:?}): batched={} solo={}",
                            a.is_some(),
                            b.is_some()
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn padded_mixed_length_lanes_match_the_per_instance_kernel() {
        // Lanes of 3, 4 and 6 tasks over the same (p, k_max) shape: the two
        // shorter lanes run padded against the 6-task lane and must still
        // reproduce the per-instance kernel bit for bit.
        let chains = [
            TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0)]).unwrap(),
            TaskChain::from_pairs(&[(12.0, 1.0), (48.0, 4.0), (19.0, 6.0), (21.0, 2.0)]).unwrap(),
            TaskChain::from_pairs(&[
                (5.0, 9.0),
                (5.0, 9.0),
                (80.0, 0.5),
                (11.0, 7.0),
                (33.0, 2.5),
                (8.0, 4.0),
            ])
            .unwrap(),
        ];
        let platforms: Vec<Platform> = [1e-3, 2e-3, 5e-4].iter().map(|&r| platform(r)).collect();
        let oracles: Vec<IntervalOracle> = chains
            .iter()
            .zip(&platforms)
            .map(|(c, p)| IntervalOracle::new(c, p))
            .collect();
        for bounds in [
            [None, None, None],
            [Some(45.0), None, Some(90.0)],
            [Some(30.0), Some(1e9), Some(5.0)],
        ] {
            let lanes: Vec<BatchLane<'_>> = (0..3)
                .map(|idx| BatchLane {
                    oracle: &oracles[idx],
                    chain: &chains[idx],
                    platform: &platforms[idx],
                    period_bound: bounds[idx],
                })
                .collect();
            for inner in [BatchInner::Lockstep, BatchInner::Blocked] {
                let mut scratch = BatchScratch::new();
                let batched = solve_batch_with_inner(&lanes, inner, &mut scratch);
                for (idx, lane) in lanes.iter().enumerate() {
                    let solo = reliability_dp_with_kernel(
                        lane.oracle,
                        lane.chain,
                        lane.platform,
                        lane.period_bound,
                        DpKernel::Chunked,
                    );
                    match (&batched[idx], &solo) {
                        (Some(a), Some(b)) => {
                            assert_eq!(a.reliability, b.reliability, "lane {idx} ({inner:?})");
                            assert_eq!(a.mapping, b.mapping, "lane {idx} ({inner:?})");
                        }
                        (None, None) => {}
                        (a, b) => panic!(
                            "lane {idx} feasibility mismatch ({inner:?}): batched={} solo={}",
                            a.is_some(),
                            b.is_some()
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_batches_is_clean() {
        let chains = chains();
        let p = platform(1e-3);
        let oracles: Vec<IntervalOracle> =
            chains.iter().map(|c| IntervalOracle::new(c, &p)).collect();
        let mut scratch = BatchScratch::new();
        // A bounded batch first, then an unbounded one through the same
        // scratch: no admissibility data may leak across.
        for bound in [Some(40.0), None, Some(60.0)] {
            let lanes: Vec<BatchLane<'_>> = (0..3)
                .map(|idx| BatchLane {
                    oracle: &oracles[idx],
                    chain: &chains[idx],
                    platform: &p,
                    period_bound: bound,
                })
                .collect();
            let batched = solve_batch(&lanes, &mut scratch);
            for (idx, lane) in lanes.iter().enumerate() {
                let solo = reliability_dp_with_kernel(
                    lane.oracle,
                    lane.chain,
                    lane.platform,
                    bound,
                    DpKernel::Chunked,
                );
                assert_eq!(
                    batched[idx].as_ref().map(|s| s.reliability),
                    solo.as_ref().map(|s| s.reliability),
                    "lane {idx} bound {bound:?}"
                );
            }
        }
    }
}
