//! Dense LP / ILP problem description.

use serde::{Deserialize, Serialize};

/// Sense of the objective function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `a · x ≤ b`
    Le,
    /// `a · x ≥ b`
    Ge,
    /// `a · x = b`
    Eq,
}

/// A linear constraint `coeffs · x (≤ | ≥ | =) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Coefficients, one per variable (dense).
    pub coeffs: Vec<f64>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables, with optional upper bounds
/// and optional integrality markers (making it a mixed 0-1 / integer
/// program).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Number of decision variables.
    num_vars: usize,
    /// Objective sense.
    pub objective: Objective,
    /// Objective coefficients (dense, one per variable).
    pub objective_coeffs: Vec<f64>,
    /// Constraints.
    pub constraints: Vec<Constraint>,
    /// Optional upper bound per variable (`None` = unbounded above).
    pub upper_bounds: Vec<Option<f64>>,
    /// Whether each variable is required to take an integer value.
    pub integer: Vec<bool>,
}

impl Problem {
    /// Creates a problem with `num_vars` non-negative continuous variables and
    /// the given objective.
    pub fn new(objective: Objective, objective_coeffs: Vec<f64>) -> Self {
        let num_vars = objective_coeffs.len();
        Problem {
            num_vars,
            objective,
            objective_coeffs,
            constraints: Vec::new(),
            upper_bounds: vec![None; num_vars],
            integer: vec![false; num_vars],
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient vector has the wrong length or contains
    /// non-finite values.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) {
        assert_eq!(coeffs.len(), self.num_vars, "constraint arity mismatch");
        assert!(
            coeffs.iter().all(|c| c.is_finite()) && rhs.is_finite(),
            "constraint coefficients must be finite"
        );
        self.constraints.push(Constraint { coeffs, op, rhs });
    }

    /// Adds a sparse constraint given as `(variable, coefficient)` pairs.
    pub fn add_sparse_constraint(&mut self, terms: &[(usize, f64)], op: ConstraintOp, rhs: f64) {
        let mut coeffs = vec![0.0; self.num_vars];
        for &(var, coeff) in terms {
            assert!(var < self.num_vars, "variable index out of range");
            coeffs[var] += coeff;
        }
        self.add_constraint(coeffs, op, rhs);
    }

    /// Declares an upper bound for a variable.
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) {
        assert!(var < self.num_vars, "variable index out of range");
        self.upper_bounds[var] = Some(bound);
    }

    /// Declares a variable as integer.
    pub fn set_integer(&mut self, var: usize) {
        assert!(var < self.num_vars, "variable index out of range");
        self.integer[var] = true;
    }

    /// Declares a variable as binary (integer in `[0, 1]`).
    pub fn set_binary(&mut self, var: usize) {
        self.set_integer(var);
        self.set_upper_bound(var, 1.0);
    }

    /// Whether the problem has at least one integer variable.
    pub fn has_integer_vars(&self) -> bool {
        self.integer.iter().any(|&b| b)
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective_coeffs
            .iter()
            .zip(x)
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Checks whether `x` satisfies all constraints and bounds, within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars {
            return false;
        }
        for (i, &v) in x.iter().enumerate() {
            if v < -tol {
                return false;
            }
            if let Some(ub) = self.upper_bounds[i] {
                if v > ub + tol {
                    return false;
                }
            }
            if self.integer[i] && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_feasibility() {
        let mut p = Problem::new(Objective::Maximize, vec![3.0, 2.0]);
        p.add_constraint(vec![1.0, 1.0], ConstraintOp::Le, 4.0);
        p.add_sparse_constraint(&[(0, 1.0)], ConstraintOp::Le, 2.0);
        p.set_upper_bound(1, 3.0);
        assert_eq!(p.num_vars(), 2);
        assert!(p.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[3.0, 0.0], 1e-9)); // violates x0 <= 2
        assert!(!p.is_feasible(&[1.0, 3.5], 1e-9)); // violates upper bound
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9)); // negative
        assert_eq!(p.objective_value(&[2.0, 2.0]), 10.0);
    }

    #[test]
    fn binary_marker_sets_bound_and_integrality() {
        let mut p = Problem::new(Objective::Minimize, vec![1.0]);
        p.set_binary(0);
        assert!(p.has_integer_vars());
        assert!(p.is_feasible(&[1.0], 1e-9));
        assert!(!p.is_feasible(&[0.5], 1e-9));
        assert!(!p.is_feasible(&[2.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "constraint arity mismatch")]
    fn wrong_arity_panics() {
        let mut p = Problem::new(Objective::Maximize, vec![1.0, 1.0]);
        p.add_constraint(vec![1.0], ConstraintOp::Le, 1.0);
    }

    #[test]
    fn equality_constraints_checked_both_ways() {
        let mut p = Problem::new(Objective::Maximize, vec![1.0, 1.0]);
        p.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 3.0);
        assert!(p.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[2.0, 2.0], 1e-9));
    }
}
