//! A small, dependency-free linear-programming and 0-1 integer-programming
//! solver.
//!
//! The paper solves its Section 5.4 integer linear program with CPLEX; this
//! crate is the open-source substitute used by `rpo-algorithms::exact::ilp`:
//!
//! * [`problem`] — a dense LP/ILP description (maximize or minimize a linear
//!   objective under `≤ / ≥ / =` constraints, non-negative variables,
//!   optional upper bounds, optional integrality);
//! * [`simplex`] — a two-phase primal simplex solver for the continuous
//!   relaxation;
//! * [`branch_bound`] — depth-first branch-and-bound on the integer
//!   variables, using the LP relaxation as bound.
//!
//! The implementation favours clarity and numerical robustness on the small,
//! dense problems produced by the paper's formulation (a few hundred
//! variables); it is not meant to compete with industrial solvers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch_bound;
pub mod problem;
pub mod simplex;

pub use branch_bound::{solve_ilp, IlpSolution, IlpStatus};
pub use problem::{Constraint, ConstraintOp, Objective, Problem};
pub use simplex::{solve_lp, LpSolution, LpStatus};
