//! Branch-and-bound for integer variables on top of the LP relaxation.

use serde::{Deserialize, Serialize};

use crate::{simplex, ConstraintOp, LpStatus, Objective, Problem};

/// Integrality tolerance: a relaxation value within this distance of an
/// integer is considered integral.
const INT_TOL: f64 = 1e-6;

/// Outcome status of an ILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IlpStatus {
    /// An optimal integer solution was found.
    Optimal,
    /// No integer-feasible point exists.
    Infeasible,
    /// The relaxation (and hence the ILP) is unbounded.
    Unbounded,
    /// The node limit was reached before optimality could be proven; the
    /// incumbent (if any) is returned as a best-effort solution.
    NodeLimit,
}

/// Result of solving an integer linear program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IlpSolution {
    /// Solve status.
    pub status: IlpStatus,
    /// Best integer solution found (empty if none).
    pub x: Vec<f64>,
    /// Objective value of `x` in the problem's own sense.
    pub objective: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Default limit on explored branch-and-bound nodes.
pub const DEFAULT_NODE_LIMIT: usize = 200_000;

/// Solves a mixed 0-1 / integer linear program by depth-first branch-and-bound
/// with LP-relaxation bounds, exploring at most [`DEFAULT_NODE_LIMIT`] nodes.
pub fn solve_ilp(problem: &Problem) -> IlpSolution {
    solve_ilp_with_limit(problem, DEFAULT_NODE_LIMIT)
}

/// Same as [`solve_ilp`] with an explicit node limit.
pub fn solve_ilp_with_limit(problem: &Problem, node_limit: usize) -> IlpSolution {
    let _span = rpo_obs::span!("lp.solve_ilp", vars = problem.num_vars());
    let mut state = Search {
        problem,
        node_limit,
        nodes: 0,
        incumbent: None,
        hit_limit: false,
    };
    let root_status = state.explore(problem.clone());
    rpo_obs::counter!("lp.bnb.nodes").add(state.nodes as u64);
    if root_status == Some(LpStatus::Unbounded) && state.incumbent.is_none() {
        return IlpSolution {
            status: IlpStatus::Unbounded,
            x: Vec::new(),
            objective: 0.0,
            nodes: state.nodes,
        };
    }
    match state.incumbent {
        Some((x, objective)) => IlpSolution {
            status: if state.hit_limit {
                IlpStatus::NodeLimit
            } else {
                IlpStatus::Optimal
            },
            x,
            objective,
            nodes: state.nodes,
        },
        None => IlpSolution {
            status: if state.hit_limit {
                IlpStatus::NodeLimit
            } else {
                IlpStatus::Infeasible
            },
            x: Vec::new(),
            objective: 0.0,
            nodes: state.nodes,
        },
    }
}

struct Search<'a> {
    problem: &'a Problem,
    node_limit: usize,
    nodes: usize,
    /// Best integer solution found so far, with its objective value.
    incumbent: Option<(Vec<f64>, f64)>,
    hit_limit: bool,
}

impl Search<'_> {
    /// Whether `candidate` improves on the incumbent in the problem's sense.
    fn improves(&self, candidate: f64) -> bool {
        match &self.incumbent {
            None => true,
            Some((_, best)) => match self.problem.objective {
                Objective::Maximize => candidate > *best + 1e-12,
                Objective::Minimize => candidate < *best - 1e-12,
            },
        }
    }

    /// Whether the relaxation bound of a node can still beat the incumbent.
    fn bound_can_improve(&self, bound: f64) -> bool {
        match &self.incumbent {
            None => true,
            Some((_, best)) => match self.problem.objective {
                Objective::Maximize => bound > *best + 1e-9,
                Objective::Minimize => bound < *best - 1e-9,
            },
        }
    }

    /// Explores one node; returns the LP status of its relaxation.
    fn explore(&mut self, node: Problem) -> Option<LpStatus> {
        if self.nodes >= self.node_limit {
            self.hit_limit = true;
            return None;
        }
        self.nodes += 1;

        let relaxation = simplex::solve_lp(&node);
        match relaxation.status {
            LpStatus::Infeasible => return Some(LpStatus::Infeasible),
            LpStatus::Unbounded => return Some(LpStatus::Unbounded),
            LpStatus::Optimal => {}
        }
        if !self.bound_can_improve(relaxation.objective) {
            return Some(LpStatus::Optimal);
        }

        // Pick the most fractional integer variable.
        let fractional = self
            .problem
            .integer
            .iter()
            .enumerate()
            .filter(|(_, &is_int)| is_int)
            .map(|(j, _)| (j, relaxation.x[j]))
            .map(|(j, v)| (j, v, (v - v.round()).abs()))
            .filter(|(_, _, frac)| *frac > INT_TOL)
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite fractionality"));

        match fractional {
            None => {
                // Integer feasible: round the integer coordinates exactly.
                let mut x = relaxation.x.clone();
                for (j, &is_int) in self.problem.integer.iter().enumerate() {
                    if is_int {
                        x[j] = x[j].round();
                    }
                }
                let objective = self.problem.objective_value(&x);
                if self.improves(objective) {
                    self.incumbent = Some((x, objective));
                }
            }
            Some((j, value, _)) => {
                // Branch x_j <= floor(value) and x_j >= ceil(value).
                let mut down = node.clone();
                down.add_sparse_constraint(&[(j, 1.0)], ConstraintOp::Le, value.floor());
                self.explore(down);

                let mut up = node;
                up.add_sparse_constraint(&[(j, 1.0)], ConstraintOp::Ge, value.ceil());
                self.explore(up);
            }
        }
        Some(LpStatus::Optimal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c with weights 3a + 4b + 2c <= 6, binary.
        // Best: a + c = 17? a+b = 23 (weight 7 > 6) no; b + c = 20 (weight 6) yes.
        let mut p = Problem::new(Objective::Maximize, vec![10.0, 13.0, 7.0]);
        p.add_constraint(vec![3.0, 4.0, 2.0], ConstraintOp::Le, 6.0);
        for v in 0..3 {
            p.set_binary(v);
        }
        let s = solve_ilp(&p);
        assert_eq!(s.status, IlpStatus::Optimal);
        assert_close(s.objective, 20.0);
        assert_close(s.x[0], 0.0);
        assert_close(s.x[1], 1.0);
        assert_close(s.x[2], 1.0);
    }

    #[test]
    fn integer_rounding_differs_from_lp_relaxation() {
        // max x + y s.t. 2x + 2y <= 3, integer -> LP gives 1.5, ILP gives 1.
        let mut p = Problem::new(Objective::Maximize, vec![1.0, 1.0]);
        p.add_constraint(vec![2.0, 2.0], ConstraintOp::Le, 3.0);
        p.set_integer(0);
        p.set_integer(1);
        let lp = simplex::solve_lp(&p);
        assert_close(lp.objective, 1.5);
        let s = solve_ilp(&p);
        assert_eq!(s.status, IlpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn infeasible_integer_program() {
        // 0.4 <= x <= 0.6 with x integer has no solution.
        let mut p = Problem::new(Objective::Maximize, vec![1.0]);
        p.add_constraint(vec![1.0], ConstraintOp::Ge, 0.4);
        p.add_constraint(vec![1.0], ConstraintOp::Le, 0.6);
        p.set_integer(0);
        let s = solve_ilp(&p);
        assert_eq!(s.status, IlpStatus::Infeasible);
    }

    #[test]
    fn unbounded_integer_program() {
        let p = {
            let mut p = Problem::new(Objective::Maximize, vec![1.0]);
            p.set_integer(0);
            p
        };
        let s = solve_ilp(&p);
        assert_eq!(s.status, IlpStatus::Unbounded);
    }

    #[test]
    fn minimization_set_cover() {
        // Cover {1,2,3} with sets A={1,2} (cost 3), B={2,3} (cost 3), C={1,3} (cost 3),
        // D={1,2,3} (cost 5). Optimal: two of A/B/C (cost 6) vs D (cost 5) -> D.
        let mut p = Problem::new(Objective::Minimize, vec![3.0, 3.0, 3.0, 5.0]);
        p.add_constraint(vec![1.0, 0.0, 1.0, 1.0], ConstraintOp::Ge, 1.0); // element 1
        p.add_constraint(vec![1.0, 1.0, 0.0, 1.0], ConstraintOp::Ge, 1.0); // element 2
        p.add_constraint(vec![0.0, 1.0, 1.0, 1.0], ConstraintOp::Ge, 1.0); // element 3
        for v in 0..4 {
            p.set_binary(v);
        }
        let s = solve_ilp(&p);
        assert_eq!(s.status, IlpStatus::Optimal);
        assert_close(s.objective, 5.0);
        assert_close(s.x[3], 1.0);
    }

    #[test]
    fn mixed_integer_program() {
        // max 2x + y, x integer, y continuous, x + y <= 3.7, x <= 2.4.
        // Optimal: x = 2, y = 1.7 -> 5.7.
        let mut p = Problem::new(Objective::Maximize, vec![2.0, 1.0]);
        p.add_constraint(vec![1.0, 1.0], ConstraintOp::Le, 3.7);
        p.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 2.4);
        p.set_integer(0);
        let s = solve_ilp(&p);
        assert_eq!(s.status, IlpStatus::Optimal);
        assert_close(s.objective, 5.7);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 1.7);
    }

    #[test]
    fn node_limit_is_reported() {
        // A feasibility-hard-ish equality knapsack; with a node limit of 1 the
        // search cannot finish.
        let mut p = Problem::new(Objective::Maximize, vec![1.0, 1.0, 1.0, 1.0, 1.0]);
        p.add_constraint(vec![7.0, 5.0, 3.0, 11.0, 13.0], ConstraintOp::Eq, 24.0);
        for v in 0..5 {
            p.set_binary(v);
        }
        let s = solve_ilp_with_limit(&p, 1);
        assert_eq!(s.status, IlpStatus::NodeLimit);
        // With a generous limit the optimum (13 + 11 = 24 or 5 + 3 + 7 + ... ) is found.
        let s = solve_ilp(&p);
        assert_eq!(s.status, IlpStatus::Optimal);
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn solution_always_feasible_on_assignment_problem() {
        // 3x3 assignment as an ILP; optimal cost 1 + 2 + 1 = 4 .. just check feasibility
        // and agreement with brute force.
        let costs = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let idx = |i: usize, j: usize| i * 3 + j;
        let flat: Vec<f64> = costs.iter().flatten().copied().collect();
        let mut p = Problem::new(Objective::Minimize, flat.clone());
        for i in 0..3 {
            let row: Vec<(usize, f64)> = (0..3).map(|j| (idx(i, j), 1.0)).collect();
            p.add_sparse_constraint(&row, ConstraintOp::Eq, 1.0);
            let col: Vec<(usize, f64)> = (0..3).map(|j| (idx(j, i), 1.0)).collect();
            p.add_sparse_constraint(&col, ConstraintOp::Eq, 1.0);
        }
        for v in 0..9 {
            p.set_binary(v);
        }
        let s = solve_ilp(&p);
        assert_eq!(s.status, IlpStatus::Optimal);
        assert!(p.is_feasible(&s.x, 1e-6));

        // Brute-force the 6 permutations.
        let mut best = f64::INFINITY;
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for perm in perms {
            let cost: f64 = perm.iter().enumerate().map(|(i, &j)| costs[i][j]).sum();
            best = best.min(cost);
        }
        assert_close(s.objective, best);
    }
}
