//! Two-phase primal simplex for the continuous relaxation.

use serde::{Deserialize, Serialize};

use crate::{ConstraintOp, Objective, Problem};

/// Numerical tolerance used by the solver.
const TOL: f64 = 1e-9;
/// Number of Dantzig pivots before switching to Bland's rule (anti-cycling).
const BLAND_THRESHOLD: usize = 10_000;
/// Hard cap on pivots, as a defence against numerical stalling.
const MAX_PIVOTS: usize = 200_000;

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Optimal variable values (empty unless status is [`LpStatus::Optimal`]).
    pub x: Vec<f64>,
    /// Optimal objective value in the problem's own sense
    /// (meaningless unless status is [`LpStatus::Optimal`]).
    pub objective: f64,
}

impl LpSolution {
    fn infeasible() -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            x: Vec::new(),
            objective: 0.0,
        }
    }
    fn unbounded() -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            x: Vec::new(),
            objective: 0.0,
        }
    }
}

/// Solves the continuous relaxation of `problem` (integrality markers are
/// ignored) with a dense two-phase primal simplex.
pub fn solve_lp(problem: &Problem) -> LpSolution {
    Tableau::build(problem).solve(problem)
}

/// Dense simplex tableau.
///
/// Column layout: the `n` structural variables, then one slack/surplus column
/// per inequality constraint, then one artificial column per `≥`/`=`
/// constraint (and per `≤` row whose right-hand side had to be negated).
struct Tableau {
    /// Number of rows (constraints).
    m: usize,
    /// Total number of columns, excluding the right-hand side.
    cols: usize,
    /// `m x (cols + 1)` matrix; the last column is the right-hand side.
    a: Vec<Vec<f64>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Column indices of artificial variables.
    artificials: Vec<usize>,
    /// Number of structural variables of the original problem.
    n_structural: usize,
}

impl Tableau {
    /// Builds the phase-1 tableau: upper bounds become explicit `≤` rows, all
    /// right-hand sides are made non-negative, slack/surplus/artificial
    /// variables are appended and an initial basis of slacks/artificials is
    /// chosen.
    fn build(problem: &Problem) -> Self {
        let n = problem.num_vars();

        // Materialize upper bounds as plain constraints.
        let mut rows: Vec<(Vec<f64>, ConstraintOp, f64)> = problem
            .constraints
            .iter()
            .map(|c| (c.coeffs.clone(), c.op, c.rhs))
            .collect();
        for (var, ub) in problem.upper_bounds.iter().enumerate() {
            if let Some(ub) = ub {
                let mut coeffs = vec![0.0; n];
                coeffs[var] = 1.0;
                rows.push((coeffs, ConstraintOp::Le, *ub));
            }
        }

        // Normalize to non-negative right-hand sides.
        for (coeffs, op, rhs) in &mut rows {
            if *rhs < 0.0 {
                for c in coeffs.iter_mut() {
                    *c = -*c;
                }
                *rhs = -*rhs;
                *op = match *op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
            }
        }

        let m = rows.len();
        let num_slacks = rows
            .iter()
            .filter(|(_, op, _)| !matches!(op, ConstraintOp::Eq))
            .count();
        let num_artificials = rows
            .iter()
            .filter(|(_, op, _)| matches!(op, ConstraintOp::Ge | ConstraintOp::Eq))
            .count();
        let cols = n + num_slacks + num_artificials;

        let mut a = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut artificials = Vec::with_capacity(num_artificials);
        let mut next_slack = n;
        let mut next_artificial = n + num_slacks;

        for (i, (coeffs, op, rhs)) in rows.iter().enumerate() {
            a[i][..n].copy_from_slice(coeffs);
            a[i][cols] = *rhs;
            match op {
                ConstraintOp::Le => {
                    a[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                ConstraintOp::Ge => {
                    a[i][next_slack] = -1.0;
                    next_slack += 1;
                    a[i][next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    artificials.push(next_artificial);
                    next_artificial += 1;
                }
                ConstraintOp::Eq => {
                    a[i][next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    artificials.push(next_artificial);
                    next_artificial += 1;
                }
            }
        }

        Tableau {
            m,
            cols,
            a,
            basis,
            artificials,
            n_structural: n,
        }
    }

    /// Runs both simplex phases and extracts the solution.
    fn solve(mut self, problem: &Problem) -> LpSolution {
        // Phase 1: minimize the sum of artificial variables, i.e. maximize its
        // negation.
        if !self.artificials.is_empty() {
            let mut phase1_cost = vec![0.0; self.cols];
            for &j in &self.artificials {
                phase1_cost[j] = -1.0;
            }
            match self.optimize(&phase1_cost) {
                PivotOutcome::Optimal => {}
                // Phase 1 objective is bounded by 0, so this cannot happen.
                PivotOutcome::Unbounded => unreachable!("phase-1 objective is bounded"),
                PivotOutcome::Stalled => return LpSolution::infeasible(),
            }
            let infeasibility: f64 = self
                .basis
                .iter()
                .enumerate()
                .filter(|(_, &j)| self.artificials.contains(&j))
                .map(|(i, _)| self.a[i][self.cols])
                .sum();
            if infeasibility > 1e-6 {
                return LpSolution::infeasible();
            }
            self.drive_out_artificials();
        }

        // Phase 2: the real objective (internally always maximized).
        let mut cost = vec![0.0; self.cols];
        let sign = match problem.objective {
            Objective::Maximize => 1.0,
            Objective::Minimize => -1.0,
        };
        for (j, &c) in problem.objective_coeffs.iter().enumerate() {
            cost[j] = sign * c;
        }
        // Artificial columns must never re-enter the basis.
        for &j in &self.artificials {
            cost[j] = f64::NEG_INFINITY;
        }
        match self.optimize(&cost) {
            PivotOutcome::Optimal => {}
            PivotOutcome::Unbounded => return LpSolution::unbounded(),
            PivotOutcome::Stalled => return LpSolution::infeasible(),
        }

        let mut x = vec![0.0; self.n_structural];
        for (i, &j) in self.basis.iter().enumerate() {
            if j < self.n_structural {
                x[j] = self.a[i][self.cols];
            }
        }
        let objective = problem.objective_value(&x);
        LpSolution {
            status: LpStatus::Optimal,
            x,
            objective,
        }
    }

    /// After phase 1, pivot basic artificial variables (all at value 0) out of
    /// the basis whenever possible so that phase 2 starts from a clean basis.
    fn drive_out_artificials(&mut self) {
        for i in 0..self.m {
            if !self.artificials.contains(&self.basis[i]) {
                continue;
            }
            // Find any non-artificial column with a non-zero coefficient.
            let col = (0..self.n_structural + (self.cols - self.n_structural))
                .filter(|j| !self.artificials.contains(j))
                .find(|&j| self.a[i][j].abs() > TOL);
            if let Some(j) = col {
                self.pivot(i, j);
            }
            // If no such column exists the row is redundant; the artificial
            // stays basic at value 0, which is harmless because its phase-2
            // cost is -inf and its value is 0.
        }
    }

    /// Primal simplex iterations for the given (maximization) cost vector.
    fn optimize(&mut self, cost: &[f64]) -> PivotOutcome {
        for iteration in 0..MAX_PIVOTS {
            let bland = iteration >= BLAND_THRESHOLD;
            // Reduced costs: rc_j = cost_j − Σ_i cost_basis(i) · a[i][j].
            let entering = self.choose_entering(cost, bland);
            let Some(col) = entering else {
                return PivotOutcome::Optimal;
            };
            // Ratio test.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.m {
                if self.a[i][col] > TOL {
                    let ratio = self.a[i][self.cols] / self.a[i][col];
                    let better = match best {
                        None => true,
                        Some((bi, br)) => {
                            ratio < br - TOL
                                || ((ratio - br).abs() <= TOL && self.basis[i] < self.basis[bi])
                        }
                    };
                    if better {
                        best = Some((i, ratio));
                    }
                }
            }
            let Some((row, _)) = best else {
                return PivotOutcome::Unbounded;
            };
            self.pivot(row, col);
        }
        PivotOutcome::Stalled
    }

    fn choose_entering(&self, cost: &[f64], bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.cols {
            if self.basis.contains(&j) || cost[j] == f64::NEG_INFINITY {
                continue;
            }
            let mut rc = cost[j];
            for i in 0..self.m {
                let cb = cost[self.basis[i]];
                if cb != 0.0 && cb != f64::NEG_INFINITY {
                    rc -= cb * self.a[i][j];
                }
            }
            if rc > TOL {
                if bland {
                    return Some(j);
                }
                if best.is_none_or(|(_, brc)| rc > brc) {
                    best = Some((j, rc));
                }
            }
        }
        best.map(|(j, _)| j)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        rpo_obs::counter!("lp.simplex.pivots").inc();
        let pivot_value = self.a[row][col];
        debug_assert!(pivot_value.abs() > TOL, "pivot on a near-zero element");
        for j in 0..=self.cols {
            self.a[row][j] /= pivot_value;
        }
        for i in 0..self.m {
            if i != row && self.a[i][col].abs() > 0.0 {
                let factor = self.a[i][col];
                for j in 0..=self.cols {
                    self.a[i][j] -= factor * self.a[row][j];
                }
            }
        }
        self.basis[row] = col;
    }
}

enum PivotOutcome {
    Optimal,
    Unbounded,
    Stalled,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2, 6).
        let mut p = Problem::new(Objective::Maximize, vec![3.0, 5.0]);
        p.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 4.0);
        p.add_constraint(vec![0.0, 2.0], ConstraintOp::Le, 12.0);
        p.add_constraint(vec![3.0, 2.0], ConstraintOp::Le, 18.0);
        let s = solve_lp(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 3 -> optimum at (10, 0) = 20.
        let mut p = Problem::new(Objective::Minimize, vec![2.0, 3.0]);
        p.add_constraint(vec![1.0, 1.0], ConstraintOp::Ge, 10.0);
        p.add_constraint(vec![1.0, 0.0], ConstraintOp::Ge, 3.0);
        let s = solve_lp(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 20.0);
        assert_close(s.x[0], 10.0);
        assert_close(s.x[1], 0.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 5, x <= 3 -> (0..3, rest y): best x=0, y=5 -> 10.
        let mut p = Problem::new(Objective::Maximize, vec![1.0, 2.0]);
        p.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 5.0);
        p.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 3.0);
        let s = solve_lp(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 10.0);
        assert_close(s.x[1], 5.0);
    }

    #[test]
    fn infeasible_problem_detected() {
        let mut p = Problem::new(Objective::Maximize, vec![1.0]);
        p.add_constraint(vec![1.0], ConstraintOp::Le, 1.0);
        p.add_constraint(vec![1.0], ConstraintOp::Ge, 2.0);
        assert_eq!(solve_lp(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        let mut p = Problem::new(Objective::Maximize, vec![1.0, 0.0]);
        p.add_constraint(vec![0.0, 1.0], ConstraintOp::Le, 1.0);
        assert_eq!(solve_lp(&p).status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_are_respected() {
        let mut p = Problem::new(Objective::Maximize, vec![1.0, 1.0]);
        p.set_upper_bound(0, 2.5);
        p.set_upper_bound(1, 1.5);
        p.add_constraint(vec![1.0, 1.0], ConstraintOp::Le, 10.0);
        let s = solve_lp(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -2  (i.e. y >= x + 2), minimize y  -> x = 0, y = 2.
        let mut p = Problem::new(Objective::Minimize, vec![0.0, 1.0]);
        p.add_constraint(vec![1.0, -1.0], ConstraintOp::Le, -2.0);
        let s = solve_lp(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; mostly checks anti-cycling / termination.
        let mut p = Problem::new(Objective::Maximize, vec![10.0, -57.0, -9.0, -24.0]);
        p.add_constraint(vec![0.5, -5.5, -2.5, 9.0], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![0.5, -1.5, -0.5, 1.0], ConstraintOp::Le, 0.0);
        p.add_constraint(vec![1.0, 0.0, 0.0, 0.0], ConstraintOp::Le, 1.0);
        let s = solve_lp(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn solution_is_feasible_for_random_like_problem() {
        let mut p = Problem::new(Objective::Maximize, vec![1.0, 2.0, 3.0, 1.5, 0.5]);
        p.add_constraint(vec![1.0, 1.0, 1.0, 1.0, 1.0], ConstraintOp::Le, 10.0);
        p.add_constraint(vec![2.0, 1.0, 0.0, 3.0, 1.0], ConstraintOp::Le, 15.0);
        p.add_constraint(vec![0.0, 1.0, 2.0, 1.0, 0.0], ConstraintOp::Le, 12.0);
        p.add_constraint(vec![1.0, 0.0, 1.0, 0.0, 1.0], ConstraintOp::Ge, 2.0);
        let s = solve_lp(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(p.is_feasible(&s.x, 1e-6));
    }
}
