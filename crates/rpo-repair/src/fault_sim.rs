//! Closing the loop: fault-injecting Monte-Carlo with the repair ladder as
//! the live repair callback.

use rpo_model::{Mapping, Platform, TaskChain};
use rpo_sim::{monte_carlo_with_faults, FaultPlan, FaultSimReport, MonteCarloConfig};

use crate::session::{RepairReport, RepairSession};

/// Runs the fault-injecting Monte-Carlo of `rpo-sim` with `session`'s
/// ladder repairing the mapping at every injected fault.
///
/// Each [`FaultPlan`] event interrupts the simulation, flows through
/// [`RepairSession::apply`], and the simulation resumes on the repaired
/// `(chain, platform, mapping)`. Returns the per-segment simulation report
/// together with one [`RepairReport`] per successfully repaired event; an
/// unrepairable event (e.g. the last processor failing) stops the run early,
/// which the report's `events_unrepaired` counter records.
pub fn monte_carlo_with_repair(
    session: &mut RepairSession,
    config: &MonteCarloConfig,
    plan: &FaultPlan,
) -> (FaultSimReport, Vec<RepairReport>) {
    let chain: TaskChain = session.chain().clone();
    let platform: Platform = session.platform().clone();
    let mapping: Mapping = session.mapping().clone();
    let mut reports = Vec::new();
    let sim =
        monte_carlo_with_faults(
            &chain,
            &platform,
            &mapping,
            config,
            plan,
            |delta| match session.apply(delta) {
                Ok(report) => {
                    reports.push(report);
                    Some((
                        session.chain().clone(),
                        session.platform().clone(),
                        session.mapping().clone(),
                    ))
                }
                Err(_) => None,
            },
        );
    (sim, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{PlatformDelta, TaskChain};
    use rpo_sim::FaultEvent;

    #[test]
    fn injected_failure_is_repaired_and_the_sim_finishes_on_the_new_mapping() {
        let chain = TaskChain::from_pairs(&[(30.0, 1.0), (20.0, 2.0), (25.0, 1.0)]).unwrap();
        let platform = Platform::homogeneous(4, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
        let mut session = RepairSession::new(chain, platform, None).unwrap();
        let plan = FaultPlan::scripted(vec![FaultEvent {
            at_fraction: 0.5,
            delta: PlatformDelta::ProcessorFailed(0),
        }]);
        let config = MonteCarloConfig {
            num_datasets: 4_000,
            seed: 99,
            chunk_size: 512,
        };
        let (report, repairs) = monte_carlo_with_repair(&mut session, &config, &plan);
        assert_eq!(report.segments.len(), 2);
        assert_eq!(report.events_applied, 1);
        assert_eq!(report.events_unrepaired, 0);
        assert_eq!(report.datasets, 4_000);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].delta, PlatformDelta::ProcessorFailed(0));
        // The session advanced to the shrunken platform.
        assert_eq!(session.platform().num_processors(), 3);
        // And the post-fault segment simulated the repaired mapping — its
        // analytic reliability is the session's, which both segments' Monte
        // Carlo estimates should be loosely consistent with.
        assert!(report.overall_reliability > 0.0);
    }

    #[test]
    fn unrepairable_fault_stops_the_run_and_is_counted() {
        let chain = TaskChain::from_pairs(&[(10.0, 1.0), (20.0, 1.0)]).unwrap();
        let platform = Platform::homogeneous(1, 1.0, 1e-3, 1.0, 1e-4, 1).unwrap();
        let mut session = RepairSession::new(chain, platform, None).unwrap();
        let plan = FaultPlan::scripted(vec![FaultEvent {
            at_fraction: 0.5,
            delta: PlatformDelta::ProcessorFailed(0),
        }]);
        let config = MonteCarloConfig {
            num_datasets: 1_000,
            seed: 7,
            chunk_size: 256,
        };
        let (report, repairs) = monte_carlo_with_repair(&mut session, &config, &plan);
        assert_eq!(report.events_unrepaired, 1);
        assert!(repairs.is_empty());
        assert_eq!(report.datasets, 500);
        // The session is still usable on its pre-delta state.
        assert_eq!(session.platform().num_processors(), 1);
    }
}
