//! Self-healing pipeline: **live mapping repair** after platform churn.
//!
//! The paper solves static instances; this crate keeps a solved instance
//! *alive* while the platform changes underneath it. A [`RepairSession`]
//! holds the `(chain, platform, mapping)` triple together with the warm
//! solver state (the [`IntervalOracle`](rpo_model::IntervalOracle) and the
//! DP boundary grid in a [`DpScratch`](rpo_algorithms::DpScratch)), and
//! [`RepairSession::apply`] walks a **graded degradation ladder** for each
//! incoming [`PlatformDelta`](rpo_model::PlatformDelta):
//!
//! 1. [`RepairTier::LocalPatch`] — touch only the intervals that used a
//!    failed/degraded processor: remap surviving processor ids and swap in a
//!    free same-class replacement, then re-certify the patched mapping
//!    against the bounds via `oracle.evaluate`. Microseconds, no DP at all.
//! 2. [`RepairTier::WarmDp`] — re-run the homogeneous DP reusing the
//!    unchanged prefix of the prior boundary grid (see below).
//! 3. [`RepairTier::FullSolve`] — cold re-solve (homogeneous DP or the
//!    heterogeneous class DP), when nothing warm survives the delta.
//!
//! The chosen tier is reported per event, and every repair's wall time feeds
//! the `repair.latency` histogram.
//!
//! # Why prefix reuse is bit-safe
//!
//! The shared DP of `algo1`/`algo2` fills a boundary grid `f[i][k]` — the
//! best reliability of tasks `1..=i` on `k` processors — row by row, and row
//! `i` reads only (a) rows `j < i` and (b) the block reliabilities of
//! intervals *ending at task `i − 1`*, which are functions of the works of
//! tasks `< i`, the class parameters, and the boundary communication data.
//! Two consequences:
//!
//! * **Work revision of task `t`**: every row `i ≤ t` reads only data from
//!   tasks `< t`, none of which changed — and the oracle's incremental
//!   update ([`IntervalOracle::apply_delta`](rpo_model::IntervalOracle::apply_delta))
//!   rebuilds its prefix sums *only from boundary `t + 1` on*, leaving the
//!   earlier entries untouched in memory. Re-sweeping rows `t + 1 ..= n`
//!   over kept rows therefore reproduces a cold solve **bit-for-bit**: the
//!   same kernel reads the same bits in the same order. The one exception is
//!   a class crossing the factored-exponent guard (`ρ·W_total` moving across
//!   40): block reliabilities then come from a different, ulp-distinct code
//!   path, `AppliedDelta::factored_changed` reports it, and the ladder falls
//!   back to a full solve.
//! * **Processor failure on a homogeneous platform**: `f[i][k]` never
//!   depends on how many processors exist beyond `k`, so the *whole* grid
//!   stays exact on the shrunken platform — repair is just re-picking the
//!   best reachable final state over `k ≤ p − 1` and retracing (the grid's
//!   row stride still remembers the old width; the traceback is told).
//!
//! The local-patch tier is *provably optimal* on homogeneous platforms: if
//! the optimal mapping used `m < p` processors, swapping the failed one for
//! a free one preserves the optimal value `R*(p)`; since `R*(p − 1) ≤
//! R*(p)` and the patched mapping achieves `R*(p)` on `p − 1` processors,
//! the patch *is* an optimal mapping of the shrunken platform. When no free
//! processor exists the ladder escalates to the warm DP, which is exact by
//! construction. On heterogeneous platforms the patch is certified against
//! the greedy baseline instead (never below it), escalating on failure.
//!
//! Closing the loop with the simulator: [`monte_carlo_with_repair`] runs
//! `rpo-sim`'s fault-injecting Monte-Carlo with this crate's ladder as the
//! repair callback — kill processors mid-run, repair live, and read the
//! recovered reliability off the per-segment report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fault_sim;
mod session;

pub use fault_sim::monte_carlo_with_repair;
pub use session::{RepairReport, RepairSession, RepairTier};
