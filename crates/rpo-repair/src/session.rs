//! The [`RepairSession`]: one live instance plus the warm solver state, with
//! the graded local-patch → warm-DP → full-solve repair ladder.

use std::time::Instant;

use rpo_algorithms::{
    algo_het_with_oracle, greedy_het_with_oracle, reliability_dp_with_scratch,
    repair_reliability_dp_with_scratch, AlgoError, DpKernel, DpScratch, WarmPath,
};
use rpo_model::{
    AppliedDelta, IntervalOracle, MappedInterval, Mapping, MappingEvaluation, ModelError, Platform,
    PlatformDelta, TaskChain,
};
use serde::{Deserialize, Serialize};

/// Which rung of the degradation ladder produced a repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairTier {
    /// Only the intervals touching the failed/degraded processor were
    /// patched (or nothing at all was remapped); the result was re-certified
    /// against the bounds via `oracle.evaluate`. No dynamic program ran.
    LocalPatch,
    /// The homogeneous DP re-ran reusing the unchanged prefix of the prior
    /// boundary grid (see the crate docs for why that is bit-safe).
    WarmDp,
    /// A cold re-solve (homogeneous DP or heterogeneous class DP).
    FullSolve,
}

/// The outcome of one [`RepairSession::apply`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// The delta that was applied.
    pub delta: PlatformDelta,
    /// The ladder rung that produced the repaired mapping.
    pub tier: RepairTier,
    /// Reliability of the repaired mapping (exact Eq. 9 value).
    pub reliability: f64,
    /// Reliability of the mapping before the delta.
    pub previous_reliability: f64,
    /// Wall-clock nanoseconds the whole repair took (oracle delta + ladder).
    pub elapsed_nanos: u64,
}

/// A live solved instance: the current `(chain, platform, mapping)` triple
/// plus the warm state ([`IntervalOracle`], DP boundary grid) that makes
/// repairs cheap. Create one with [`RepairSession::new`] (which performs the
/// initial solve), then feed it [`PlatformDelta`]s via
/// [`RepairSession::apply`] as the platform churns.
#[derive(Debug)]
pub struct RepairSession {
    chain: TaskChain,
    platform: Platform,
    oracle: IntervalOracle,
    scratch: DpScratch,
    mapping: Mapping,
    reliability: f64,
    period_bound: Option<f64>,
}

impl RepairSession {
    /// Solves the instance from cold and opens the session. Homogeneous
    /// platforms use the exact DP (Algorithm 1, or Algorithm 2 under a
    /// period bound) and keep its boundary grid warm for later repairs;
    /// heterogeneous platforms use the class DP (`algo_het`), for which
    /// only the local-patch and full-solve tiers are available.
    ///
    /// # Errors
    ///
    /// [`AlgoError::InvalidBound`] for a non-positive/non-finite period
    /// bound, [`AlgoError::NoFeasibleMapping`] if the instance has no
    /// mapping within the bounds, or any solver error.
    pub fn new(
        chain: TaskChain,
        platform: Platform,
        period_bound: Option<f64>,
    ) -> Result<Self, AlgoError> {
        if let Some(bound) = period_bound {
            if !(bound.is_finite() && bound > 0.0) {
                return Err(AlgoError::InvalidBound("period bound"));
            }
        }
        let oracle = IntervalOracle::new(&chain, &platform);
        let mut scratch = DpScratch::new();
        let (mapping, reliability) = if oracle.is_homogeneous() {
            let solution = reliability_dp_with_scratch(
                &oracle,
                &chain,
                &platform,
                period_bound,
                DpKernel::crate_default(),
                &mut scratch,
            )
            .ok_or(AlgoError::NoFeasibleMapping)?;
            (solution.mapping, solution.reliability)
        } else {
            let solution = algo_het_with_oracle(&oracle, &chain, &platform, period_bound)?;
            (solution.mapping, solution.reliability)
        };
        Ok(RepairSession {
            chain,
            platform,
            oracle,
            scratch,
            mapping,
            reliability,
            period_bound,
        })
    }

    /// The current task chain.
    pub fn chain(&self) -> &TaskChain {
        &self.chain
    }

    /// The current (post-churn) platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The current mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Reliability of the current mapping (exact Eq. 9 value).
    pub fn reliability(&self) -> f64 {
        self.reliability
    }

    /// The worst-case period bound the session solves under, if any.
    pub fn period_bound(&self) -> Option<f64> {
        self.period_bound
    }

    /// The warm interval oracle of the current instance.
    pub fn oracle(&self) -> &IntervalOracle {
        &self.oracle
    }

    /// Applies one delta and repairs the mapping through the ladder,
    /// reporting the tier that produced the result.
    ///
    /// On success the session's chain/platform/mapping advance to the
    /// post-delta state. On failure — most importantly
    /// [`AlgoError::NoFeasibleMapping`] when the delta leaves no feasible
    /// mapping (e.g. the last processor failed) — the session stays on its
    /// pre-delta state and remains usable.
    pub fn apply(&mut self, delta: &PlatformDelta) -> Result<RepairReport, AlgoError> {
        let started = Instant::now();
        let _span = rpo_obs::span!("repair.apply", tasks = self.chain.len());
        let applied = match self.oracle.apply_delta(&self.chain, &self.platform, delta) {
            Ok(applied) => applied,
            // Killing the last processor is a feasibility fact, not a
            // malformed input: report it as such.
            Err(ModelError::EmptyPlatform) => return Err(AlgoError::NoFeasibleMapping),
            Err(error) => return Err(AlgoError::Model(error)),
        };
        let previous_reliability = self.reliability;
        let repaired = run_ladder(
            &self.oracle,
            &mut self.scratch,
            &self.mapping,
            &self.platform,
            self.period_bound,
            &applied,
            delta,
        );
        match repaired {
            Ok((mapping, reliability, tier)) => {
                self.chain = applied.chain;
                self.platform = applied.platform;
                self.mapping = mapping;
                self.reliability = reliability;
                let elapsed_nanos = started.elapsed().as_nanos() as u64;
                rpo_obs::histogram!("repair.latency").record_nanos(elapsed_nanos);
                match tier {
                    RepairTier::LocalPatch => rpo_obs::counter!("repair.tier.local_patch").inc(),
                    RepairTier::WarmDp => rpo_obs::counter!("repair.tier.warm_dp").inc(),
                    RepairTier::FullSolve => rpo_obs::counter!("repair.tier.full_solve").inc(),
                }
                Ok(RepairReport {
                    delta: *delta,
                    tier,
                    reliability,
                    previous_reliability,
                    elapsed_nanos,
                })
            }
            Err(error) => {
                // The oracle already advanced past the delta; rebuild it for
                // the pre-delta instance so the session stays consistent.
                // The boundary grid may have been partially overwritten by a
                // failed warm attempt — drop it (later repairs cold-start).
                self.oracle = IntervalOracle::new(&self.chain, &self.platform);
                self.scratch.reset();
                Err(error)
            }
        }
    }
}

/// Walks the ladder for one applied delta, returning the repaired mapping,
/// its exact reliability, and the tier that produced it.
fn run_ladder(
    oracle: &IntervalOracle,
    scratch: &mut DpScratch,
    mapping: &Mapping,
    pre_platform: &Platform,
    period_bound: Option<f64>,
    applied: &AppliedDelta,
    delta: &PlatformDelta,
) -> Result<(Mapping, f64, RepairTier), AlgoError> {
    let homogeneous = oracle.is_homogeneous();
    match *delta {
        PlatformDelta::ProcessorFailed(_) => {
            if let Some((patched, reliability)) =
                local_patch(oracle, mapping, pre_platform, period_bound, applied, delta)
            {
                if homogeneous {
                    // Provably optimal (see the crate docs): take it as-is.
                    return Ok((patched, reliability, RepairTier::LocalPatch));
                }
                // Heterogeneous: certify against the greedy baseline; a
                // patch below greedy escalates to the full class solve.
                let greedy =
                    greedy_het_with_oracle(oracle, &applied.chain, &applied.platform, period_bound);
                match greedy {
                    Ok(ref baseline) if baseline.reliability > reliability => {}
                    _ => return Ok((patched, reliability, RepairTier::LocalPatch)),
                }
            }
            if homogeneous {
                warm_dp(oracle, scratch, period_bound, applied)
            } else {
                full_solve(oracle, scratch, period_bound, applied)
            }
        }
        PlatformDelta::TaskWorkRevised { .. } => {
            if homogeneous && !applied.factored_changed {
                warm_dp(oracle, scratch, period_bound, applied)
            } else {
                full_solve(oracle, scratch, period_bound, applied)
            }
        }
        PlatformDelta::SpeedDegraded { .. } | PlatformDelta::RateRevised { .. } => {
            if !applied.classes_changed {
                // The revision changed no observable class parameter (e.g. a
                // factor-1 degradation): the current mapping is still exact.
                let evaluation = oracle.evaluate(mapping);
                if certified(&evaluation, period_bound) {
                    return Ok((
                        mapping.clone(),
                        evaluation.reliability,
                        RepairTier::LocalPatch,
                    ));
                }
            }
            full_solve(oracle, scratch, period_bound, applied)
        }
    }
}

/// Tier 1: remap processor ids across the failure and re-replicate only the
/// interval that lost a replica (with a free processor of the failed one's
/// class), then re-certify via `oracle.evaluate`. Returns `None` when no
/// free same-class processor exists or the patch misses the bounds.
fn local_patch(
    oracle: &IntervalOracle,
    mapping: &Mapping,
    pre_platform: &Platform,
    period_bound: Option<f64>,
    applied: &AppliedDelta,
    delta: &PlatformDelta,
) -> Option<(Mapping, f64)> {
    let failed = delta.failed_processor()?;
    let mut lost: Option<usize> = None;
    let mut used = vec![false; applied.platform.num_processors()];
    let mut mapped: Vec<MappedInterval> = Vec::with_capacity(mapping.num_intervals());
    for (j, interval) in mapping.intervals().iter().enumerate() {
        let processors: Vec<usize> = interval
            .processors
            .iter()
            .filter_map(|&u| delta.remap_processor(u))
            .collect();
        if processors.len() < interval.processors.len() {
            debug_assert!(lost.is_none(), "a processor replicates one interval");
            lost = Some(j);
        }
        for &u in &processors {
            used[u] = true;
        }
        mapped.push(MappedInterval::new(interval.interval, processors));
    }
    if let Some(j) = lost {
        // Replace the lost replica with a free processor of the same class
        // — same `(speed, failure rate)`, so the patched mapping's
        // reliability is bit-identical to the pre-delta optimum's.
        let speed = pre_platform.speed(failed);
        let rate = pre_platform.failure_rate(failed);
        let replacement = (0..applied.platform.num_processors()).find(|&u| {
            !used[u]
                && applied.platform.speed(u) == speed
                && applied.platform.failure_rate(u) == rate
        })?;
        mapped[j].processors.push(replacement);
    }
    let patched = Mapping::new(mapped, &applied.chain, &applied.platform).ok()?;
    let evaluation = oracle.evaluate(&patched);
    if !certified(&evaluation, period_bound) {
        return None;
    }
    Some((patched, evaluation.reliability))
}

/// Tier 2: warm-started DP reusing the surviving prefix of the grid
/// (`AppliedDelta::first_affected_task` rows). Reports [`RepairTier::FullSolve`]
/// when the warm preconditions did not hold and a cold sweep ran instead.
fn warm_dp(
    oracle: &IntervalOracle,
    scratch: &mut DpScratch,
    period_bound: Option<f64>,
    applied: &AppliedDelta,
) -> Result<(Mapping, f64, RepairTier), AlgoError> {
    let (solution, path) = repair_reliability_dp_with_scratch(
        oracle,
        &applied.chain,
        &applied.platform,
        period_bound,
        applied.first_affected_task,
        scratch,
    )
    .ok_or(AlgoError::NoFeasibleMapping)?;
    let tier = match path {
        WarmPath::ReusedGrid => RepairTier::WarmDp,
        WarmPath::Resolved => RepairTier::FullSolve,
    };
    Ok((solution.mapping, solution.reliability, tier))
}

/// Tier 3: cold re-solve on the post-delta instance.
fn full_solve(
    oracle: &IntervalOracle,
    scratch: &mut DpScratch,
    period_bound: Option<f64>,
    applied: &AppliedDelta,
) -> Result<(Mapping, f64, RepairTier), AlgoError> {
    if oracle.is_homogeneous() {
        let solution = reliability_dp_with_scratch(
            oracle,
            &applied.chain,
            &applied.platform,
            period_bound,
            DpKernel::crate_default(),
            scratch,
        )
        .ok_or(AlgoError::NoFeasibleMapping)?;
        Ok((
            solution.mapping,
            solution.reliability,
            RepairTier::FullSolve,
        ))
    } else {
        let solution =
            algo_het_with_oracle(oracle, &applied.chain, &applied.platform, period_bound)?;
        Ok((
            solution.mapping,
            solution.reliability,
            RepairTier::FullSolve,
        ))
    }
}

/// Whether an evaluation satisfies the session's period bound (Algorithm 2
/// admits an interval iff its worst-case period requirement fits, so the
/// mapping-level check is on the worst-case period).
fn certified(evaluation: &MappingEvaluation, period_bound: Option<f64>) -> bool {
    match period_bound {
        None => true,
        Some(bound) => evaluation.worst_case_period <= bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> TaskChain {
        TaskChain::from_pairs(
            &(0..n)
                .map(|i| (10.0 + i as f64, 1.0 + (i % 3) as f64))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn hom_platform(p: usize) -> Platform {
        Platform::homogeneous(p, 1.0, 1e-3, 1.0, 1e-4, 3).unwrap()
    }

    fn fresh_optimum(chain: &TaskChain, platform: &Platform) -> f64 {
        rpo_algorithms::optimize_reliability_homogeneous(chain, platform)
            .unwrap()
            .reliability
    }

    #[test]
    fn failed_unused_processor_is_a_local_patch_with_identical_reliability() {
        // 2 tasks, K=1 → at most 2 processors ever used out of 6.
        let chain = chain(2);
        let platform = Platform::homogeneous(6, 1.0, 1e-3, 1.0, 1e-4, 1).unwrap();
        let mut session = RepairSession::new(chain, platform, None).unwrap();
        let before = session.reliability();
        let report = session.apply(&PlatformDelta::ProcessorFailed(5)).unwrap();
        assert_eq!(report.tier, RepairTier::LocalPatch);
        assert_eq!(report.reliability, before);
        assert_eq!(session.platform().num_processors(), 5);
    }

    #[test]
    fn failed_used_processor_repairs_to_the_exact_shrunken_optimum() {
        let chain = chain(6);
        let mut session = RepairSession::new(chain.clone(), hom_platform(5), None).unwrap();
        for failures in 1..=3usize {
            let report = session.apply(&PlatformDelta::ProcessorFailed(0)).unwrap();
            let fresh = fresh_optimum(&chain, &hom_platform(5 - failures));
            assert_eq!(
                report.reliability, fresh,
                "repair after {failures} failures must equal the cold optimum"
            );
            assert!(
                matches!(report.tier, RepairTier::LocalPatch | RepairTier::WarmDp),
                "homogeneous failures never need a cold solve (got {:?})",
                report.tier
            );
        }
    }

    #[test]
    fn failing_the_last_processor_reports_no_feasible_mapping_and_keeps_state() {
        let chain = chain(2);
        let mut session = RepairSession::new(chain, hom_platform(1), None).unwrap();
        let before = session.reliability();
        let error = session
            .apply(&PlatformDelta::ProcessorFailed(0))
            .unwrap_err();
        assert_eq!(error, AlgoError::NoFeasibleMapping);
        // Session survives and can still repair other deltas.
        assert_eq!(session.platform().num_processors(), 1);
        assert_eq!(session.reliability(), before);
        let report = session
            .apply(&PlatformDelta::TaskWorkRevised {
                task: 0,
                work: 11.0,
            })
            .unwrap();
        assert!(report.reliability > 0.0);
    }

    #[test]
    fn work_revision_warm_dp_matches_a_cold_solve_exactly() {
        let chain = chain(8);
        let platform = hom_platform(4);
        let mut session = RepairSession::new(chain.clone(), platform.clone(), None).unwrap();
        let report = session
            .apply(&PlatformDelta::TaskWorkRevised {
                task: 5,
                work: 40.0,
            })
            .unwrap();
        assert_eq!(report.tier, RepairTier::WarmDp);
        let fresh = fresh_optimum(session.chain(), &platform);
        assert_eq!(report.reliability, fresh);
    }

    #[test]
    fn degrading_a_processor_makes_the_platform_heterogeneous_and_resolves() {
        let chain = chain(5);
        let mut session = RepairSession::new(chain, hom_platform(4), None).unwrap();
        let report = session
            .apply(&PlatformDelta::SpeedDegraded {
                processor: 1,
                factor: 0.5,
            })
            .unwrap();
        assert_eq!(report.tier, RepairTier::FullSolve);
        assert!(!session.oracle().is_homogeneous());
        // And a follow-up failure on the heterogeneous platform still works.
        let follow_up = session.apply(&PlatformDelta::ProcessorFailed(1)).unwrap();
        assert!(follow_up.reliability > 0.0);
        assert!(session.oracle().is_homogeneous());
    }

    #[test]
    fn repairs_respect_a_period_bound_exactly() {
        let chain = chain(6);
        let platform = hom_platform(5);
        // A bound between the unconstrained optimum's period and the floor.
        let bound = 40.0;
        let mut session = RepairSession::new(chain.clone(), platform, Some(bound)).unwrap();
        let evaluation = session.oracle().evaluate(session.mapping());
        assert!(evaluation.worst_case_period <= bound);
        let report = session.apply(&PlatformDelta::ProcessorFailed(2)).unwrap();
        let evaluation = session.oracle().evaluate(session.mapping());
        assert!(evaluation.worst_case_period <= bound);
        assert!(report.reliability > 0.0);
    }
}
