//! Seeded request streams for the serving layer: bounded instances dressed
//! up as *requests* — with Poisson arrival times, tenant labels, a
//! controllable duplicate fraction, and per-request deadlines.
//!
//! A batch stream answers "how fast can we chew through N instances"; a
//! request stream answers the serving questions: how the admission queue
//! behaves under a given offered load, how often the canonical-hash cache
//! coalesces duplicate traffic, and how many requests blow their deadline.
//! Everything is deterministic in `(generator.base_seed, spec.seed)`, so a
//! replay is reproducible bit-for-bit: request `i` of a spec is always the
//! same instance, arriving at the same offset, for the same tenant.
//!
//! Duplicates re-generate the *same unique instance* by index (the
//! generator is deterministic), so a duplicate request is canonically
//! hash-identical to its original — exactly what exercises request
//! coalescing and the per-tenant cache shards in `rpo-serve`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

use crate::{BoundsSpec, ExperimentInstance, InstanceGenerator};

/// Specification of a seeded request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// The underlying instance generator (unique requests are its
    /// instances, in index order).
    pub generator: InstanceGenerator,
    /// Per-instance real-time bounds.
    pub bounds: BoundsSpec,
    /// Solve against the heterogeneous platform (`true`) or the homogeneous
    /// one (`false`).
    pub heterogeneous: bool,
    /// Mean offered load, in requests per second: inter-arrival gaps are
    /// exponential with mean `1 / rate` (a Poisson arrival process).
    /// Non-positive or non-finite rates collapse every arrival to offset 0
    /// (a single burst).
    pub arrival_rate: f64,
    /// Probability that a request repeats an earlier unique instance
    /// (clamped to `[0, 1]`; the first request is always unique).
    pub duplicate_fraction: f64,
    /// Number of tenants; each request is labelled with a tenant drawn
    /// uniformly from `0..tenants` (`0` behaves as single-tenant).
    pub tenants: u64,
    /// Per-request deadline, measured from the request's arrival.
    pub deadline: Duration,
    /// Seed of the arrival/duplicate/tenant randomness — independent of the
    /// generator's `base_seed`, so the same instances can be replayed under
    /// a different traffic shape.
    pub seed: u64,
}

impl RequestSpec {
    /// The `BENCH_serve.json` replay shape: paper-scale homogeneous
    /// instances, latency slack 2.0 with unbounded periods (the
    /// throughput-benchmark bounds), ~35% duplicate traffic across 4
    /// tenants, and an offered load far above the sustainable rate so the
    /// replay measures the service's admission behaviour, not the
    /// generator's pacing.
    pub fn serve_replay(base_seed: u64) -> Self {
        RequestSpec {
            generator: InstanceGenerator::paper_homogeneous(base_seed),
            bounds: BoundsSpec {
                period_slack: f64::INFINITY,
                latency_slack: 2.0,
            },
            heterogeneous: false,
            arrival_rate: 8_000.0,
            duplicate_fraction: 0.35,
            tenants: 4,
            deadline: Duration::from_millis(250),
            seed: base_seed ^ 0x5e7e_5e7e,
        }
    }

    /// The lazy, deterministic stream of the first `count` requests.
    pub fn stream(&self, count: usize) -> RequestStream {
        RequestStream {
            spec: *self,
            rng: ChaCha8Rng::seed_from_u64(self.seed),
            next: 0,
            count,
            unique_emitted: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// One generated request: a bounded instance plus its traffic envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRequest {
    /// Position in the stream (0-based).
    pub index: usize,
    /// Arrival offset from the start of the replay.
    pub arrival: Duration,
    /// Tenant label in `0..spec.tenants`.
    pub tenant: u64,
    /// Deadline measured from [`Self::arrival`].
    pub deadline: Duration,
    /// `Some(original unique index)` when this request duplicates an
    /// earlier unique request's instance, `None` when it is itself unique.
    pub duplicate_of: Option<usize>,
    /// The generated chain and platforms.
    pub instance: ExperimentInstance,
    /// Worst-case period bound `P`.
    pub period_bound: f64,
    /// Worst-case latency bound `L`.
    pub latency_bound: f64,
}

/// A lazy, deterministic iterator over generated requests.
#[derive(Debug, Clone)]
pub struct RequestStream {
    spec: RequestSpec,
    rng: ChaCha8Rng,
    next: usize,
    count: usize,
    /// Unique instances emitted so far; unique request `k` is the
    /// generator's instance `k`.
    unique_emitted: usize,
    elapsed: Duration,
}

impl Iterator for RequestStream {
    type Item = GeneratedRequest;

    fn next(&mut self) -> Option<GeneratedRequest> {
        if self.next >= self.count {
            return None;
        }
        let index = self.next;
        self.next += 1;

        // Poisson arrivals: exponential inter-arrival gaps with mean
        // 1/rate. The unit draw is taken from [0, 1) and flipped so the log
        // argument stays in (0, 1] — no infinite gaps.
        if self.spec.arrival_rate.is_finite() && self.spec.arrival_rate > 0.0 {
            let unit: f64 = self.rng.gen();
            let gap = -(1.0 - unit).ln() / self.spec.arrival_rate;
            self.elapsed += Duration::from_secs_f64(gap);
        }

        let duplicate = self.unique_emitted > 0
            && self
                .rng
                .gen_bool(self.spec.duplicate_fraction.clamp(0.0, 1.0));
        let (unique_index, duplicate_of) = if duplicate {
            let original = self.rng.gen_range(0..self.unique_emitted);
            (original, Some(original))
        } else {
            let fresh = self.unique_emitted;
            self.unique_emitted += 1;
            (fresh, None)
        };
        let tenant = if self.spec.tenants > 1 {
            self.rng.gen_range(0..self.spec.tenants)
        } else {
            0
        };

        let instance = self.spec.generator.instance(unique_index);
        let platform = if self.spec.heterogeneous {
            &instance.heterogeneous
        } else {
            &instance.homogeneous
        };
        let (period_bound, latency_bound) = self.spec.bounds.bounds(&instance.chain, platform);
        rpo_obs::counter!("workload.requests_generated").inc();
        Some(GeneratedRequest {
            index,
            arrival: self.elapsed,
            tenant,
            deadline: self.spec.deadline,
            duplicate_of,
            instance,
            period_bound,
            latency_bound,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.count - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RequestStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_sized() {
        let spec = RequestSpec::serve_replay(42);
        let a: Vec<GeneratedRequest> = spec.stream(64).collect();
        let b: Vec<GeneratedRequest> = spec.stream(64).collect();
        assert_eq!(a.len(), 64);
        assert_eq!(a, b);
        assert_eq!(spec.stream(10).len(), 10);
    }

    #[test]
    fn arrivals_are_monotone_and_roughly_paced() {
        let spec = RequestSpec {
            arrival_rate: 1_000.0,
            ..RequestSpec::serve_replay(7)
        };
        let requests: Vec<GeneratedRequest> = spec.stream(200).collect();
        for pair in requests.windows(2) {
            assert!(pair[1].arrival >= pair[0].arrival, "arrivals out of order");
        }
        // 200 requests at 1k req/s: the mean horizon is 200 ms. Allow a
        // wide band — this checks pacing, not the exponential's tails.
        let horizon = requests.last().unwrap().arrival.as_secs_f64();
        assert!(
            (0.05..1.0).contains(&horizon),
            "horizon {horizon} off scale"
        );
    }

    #[test]
    fn duplicates_repeat_an_earlier_unique_instance_exactly() {
        let spec = RequestSpec::serve_replay(11);
        let requests: Vec<GeneratedRequest> = spec.stream(512).collect();
        let mut uniques: Vec<&GeneratedRequest> = Vec::new();
        let mut duplicates = 0usize;
        for request in &requests {
            match request.duplicate_of {
                None => uniques.push(request),
                Some(original) => {
                    duplicates += 1;
                    let original = uniques[original];
                    assert_eq!(request.instance, original.instance);
                    assert_eq!(request.period_bound, original.period_bound);
                    assert_eq!(request.latency_bound, original.latency_bound);
                }
            }
        }
        // 35% nominal duplicate fraction: the replay gate needs ≥ 30%.
        let fraction = duplicates as f64 / requests.len() as f64;
        assert!(fraction >= 0.30, "duplicate fraction {fraction} below gate");
        assert!(
            fraction <= 0.45,
            "duplicate fraction {fraction} implausible"
        );
    }

    #[test]
    fn tenants_stay_in_range_and_mix() {
        let spec = RequestSpec::serve_replay(3);
        let requests: Vec<GeneratedRequest> = spec.stream(256).collect();
        let mut seen = std::collections::BTreeSet::new();
        for request in &requests {
            assert!(request.tenant < spec.tenants);
            seen.insert(request.tenant);
        }
        assert_eq!(seen.len() as u64, spec.tenants, "all tenants hit");
    }

    #[test]
    fn zero_rate_collapses_to_a_burst() {
        let spec = RequestSpec {
            arrival_rate: 0.0,
            ..RequestSpec::serve_replay(1)
        };
        for request in spec.stream(16) {
            assert_eq!(request.arrival, Duration::ZERO);
        }
    }
}
