//! Real-time bound derivation for generated instances: latency-bounded
//! (and optionally period-bounded) workload streams.
//!
//! The paper's experiments fix *absolute* bounds, but random instances vary
//! widely in total work and platform speed, so absolute bounds give an
//! uncontrollable feasibility mix. [`BoundsSpec`] derives each instance's
//! bounds **relative to its own latency floor** `W / s_max` (the whole chain
//! on a fastest processor — the smallest worst-case latency any mapping can
//! achieve): a latency slack of `1.0` is exactly the floor, slacks slightly
//! above it force single-interval-like mappings, and large slacks recover
//! the latency-unconstrained problem. This is the workload shape the
//! latency-aware heterogeneous solvers (`algo_het_lat`, the `Het-Dp-Lat`
//! portfolio backend) are measured on.

use rpo_model::{Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::{ExperimentInstance, InstanceGenerator, InstanceStream};

/// How the real-time bounds of a generated instance are derived from its
/// chain and platform, both relative to the instance's latency floor
/// `W / s_max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundsSpec {
    /// Worst-case period bound = `period_slack × W / s_max`
    /// (`f64::INFINITY` for an unbounded period).
    pub period_slack: f64,
    /// Worst-case latency bound = `latency_slack × W / s_max`. Slacks `< 1`
    /// are below the floor (always infeasible); slacks slightly above `1`
    /// are the tight regime where the latency-aware DP's choices matter.
    pub latency_slack: f64,
}

impl BoundsSpec {
    /// The latency-bounded heterogeneous benchmark setup: period slack 0.75
    /// (tight enough that partition and pattern choices matter — the
    /// `BENCH_het.json` setting) and latency slack 1.6 (well above the
    /// floor, but far below the latency of communication-heavy many-interval
    /// mappings).
    pub fn paper_het_lat() -> Self {
        BoundsSpec {
            period_slack: 0.75,
            latency_slack: 1.6,
        }
    }

    /// The `(period_bound, latency_bound)` pair for one chain/platform.
    pub fn bounds(&self, chain: &TaskChain, platform: &Platform) -> (f64, f64) {
        let floor = chain.total_work() / platform.max_speed();
        (self.period_slack * floor, self.latency_slack * floor)
    }
}

/// One generated instance together with its derived real-time bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundedInstance {
    /// The generated chain and platforms.
    pub instance: ExperimentInstance,
    /// Worst-case period bound `P`.
    pub period_bound: f64,
    /// Worst-case latency bound `L`.
    pub latency_bound: f64,
}

/// A lazy, deterministic stream of [`BoundedInstance`]s: the underlying
/// [`InstanceStream`] with per-instance bounds derived by a [`BoundsSpec`]
/// against the chosen platform.
#[derive(Debug, Clone)]
pub struct BoundedInstanceStream {
    stream: InstanceStream,
    spec: BoundsSpec,
    heterogeneous: bool,
}

impl Iterator for BoundedInstanceStream {
    type Item = BoundedInstance;

    fn next(&mut self) -> Option<BoundedInstance> {
        let instance = self.stream.next()?;
        let platform = if self.heterogeneous {
            &instance.heterogeneous
        } else {
            &instance.homogeneous
        };
        let (period_bound, latency_bound) = self.spec.bounds(&instance.chain, platform);
        Some(BoundedInstance {
            instance,
            period_bound,
            latency_bound,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.stream.size_hint()
    }
}

impl ExactSizeIterator for BoundedInstanceStream {}

impl InstanceGenerator {
    /// A lazy stream of `count` instances with per-instance bounds derived
    /// by `spec` against the heterogeneous (`heterogeneous = true`) or
    /// homogeneous platform. Deterministic in the generator's base seed.
    pub fn bounded_stream(
        &self,
        count: usize,
        spec: BoundsSpec,
        heterogeneous: bool,
    ) -> BoundedInstanceStream {
        BoundedInstanceStream {
            stream: self.stream(count),
            spec,
            heterogeneous,
        }
    }

    /// The latency-bounded class-structured heterogeneous stream: the
    /// paper's 10-processor 3-class setup ([`Self::paper_heterogeneous_classes`])
    /// with [`BoundsSpec::paper_het_lat`] bounds — the workload of the
    /// `BENCH_het_lat.json` baseline and the latency-aware differential
    /// tests.
    pub fn paper_het_lat_stream(base_seed: u64, count: usize) -> BoundedInstanceStream {
        Self::paper_heterogeneous_classes(base_seed).bounded_stream(
            count,
            BoundsSpec::paper_het_lat(),
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_scale_with_the_latency_floor() {
        let generator = InstanceGenerator::paper_heterogeneous_classes(11);
        let spec = BoundsSpec::paper_het_lat();
        for bounded in generator.bounded_stream(5, spec, true) {
            let floor =
                bounded.instance.chain.total_work() / bounded.instance.heterogeneous.max_speed();
            assert_eq!(bounded.period_bound, 0.75 * floor);
            assert_eq!(bounded.latency_bound, 1.6 * floor);
            assert!(bounded.latency_bound > floor, "latency bound above floor");
        }
    }

    #[test]
    fn streams_are_deterministic_and_sized() {
        let a: Vec<BoundedInstance> = InstanceGenerator::paper_het_lat_stream(7, 4).collect();
        let b: Vec<BoundedInstance> = InstanceGenerator::paper_het_lat_stream(7, 4).collect();
        assert_eq!(a.len(), 4);
        assert_eq!(a, b);
        let stream = InstanceGenerator::paper_het_lat_stream(7, 9);
        assert_eq!(stream.len(), 9);
    }

    #[test]
    fn homogeneous_streams_use_the_homogeneous_platform() {
        let generator = InstanceGenerator::paper_homogeneous(3);
        let spec = BoundsSpec {
            period_slack: f64::INFINITY,
            latency_slack: 2.0,
        };
        for bounded in generator.bounded_stream(3, spec, false) {
            assert!(bounded.period_bound.is_infinite());
            let floor =
                bounded.instance.chain.total_work() / bounded.instance.homogeneous.max_speed();
            assert_eq!(bounded.latency_bound, 2.0 * floor);
        }
    }
}
