//! Seeded **platform-churn traces**: timed sequences of [`PlatformDelta`]s
//! drawn from the paper's own failure model.
//!
//! The paper models processor failures as exponential with rate `λ_u` but
//! only ever uses that analytically. A [`ChurnTrace`] samples the model: each
//! processor draws a time-to-failure `−ln(1−U)/λ_u`, the failures inside the
//! observation horizon fire chronologically, and an optional **adversarial
//! burst** kills several processors back-to-back at a chosen instant (the
//! worst case for a repair loop: repeated repairs with no breathing room).
//!
//! Traces speak *current* processor indices: each [`ChurnEvent`] already
//! accounts for the id shifts caused by the removals before it, so a consumer
//! can apply the deltas left-to-right without any bookkeeping. The same trace
//! drives both the fault-injecting Monte-Carlo (`rpo-sim`'s `FaultPlan`, via
//! [`ChurnTrace::fractions`]) and the portfolio churn-replay bench.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rpo_model::{Platform, PlatformDelta};
use serde::{Deserialize, Serialize};

/// Parameters of a seeded churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Observation horizon, in the failure rates' own time unit — failures
    /// sampled beyond it never fire.
    pub horizon: f64,
    /// Cap on the number of emitted events.
    pub max_events: usize,
    /// Stop failing processors once only this many remain alive (a trace
    /// never kills the platform outright; set 1 to allow going down to a
    /// single processor).
    pub min_alive: usize,
    /// Adversarial burst size: this many extra back-to-back kills strike at
    /// [`burst_at`](Self::burst_at) (0 disables the burst).
    pub burst_kills: usize,
    /// When the burst strikes, as a fraction of the horizon.
    pub burst_at: f64,
}

impl ChurnSpec {
    /// A trace matched to the paper's `λ_p = 10⁻⁸` platforms: a horizon of
    /// `10⁹` time units (an expected ~10 natural failures on 10 processors),
    /// at most 6 events, a 2-kill burst mid-horizon, and at least 2
    /// processors kept alive.
    pub fn paper() -> Self {
        ChurnSpec {
            horizon: 1e9,
            max_events: 6,
            min_alive: 2,
            burst_kills: 2,
            burst_at: 0.5,
        }
    }
}

/// One timed churn event, indices valid on the platform *after* every
/// earlier event of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the event fires (within the spec's horizon).
    pub time: f64,
    /// The platform change.
    pub delta: PlatformDelta,
}

/// A chronological sequence of platform deltas over an observation horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// The events, sorted by time.
    pub events: Vec<ChurnEvent>,
    /// The horizon the trace was sampled over.
    pub horizon: f64,
}

impl ChurnTrace {
    /// Samples a seeded trace for `platform` under `spec`.
    ///
    /// Natural failures use the paper's exponential model per processor
    /// (`−ln(1−U)/λ_u`, infinite for failure-free processors); the burst
    /// kills uniformly chosen alive processors at `burst_at · horizon`.
    /// Deterministic for a given `(platform, spec, seed)`.
    pub fn generate(platform: &Platform, spec: &ChurnSpec, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p = platform.num_processors();
        // (failure time, original id), natural failures only.
        let mut natural: Vec<(f64, usize)> = (0..p)
            .map(|u| {
                let rate = platform.failure_rate(u);
                let draw: f64 = rng.gen();
                let time = if rate > 0.0 {
                    -(1.0 - draw).ln() / rate
                } else {
                    f64::INFINITY
                };
                (time, u)
            })
            .filter(|&(time, _)| time <= spec.horizon)
            .collect();
        natural.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite failure times"));

        let burst_time = (spec.burst_at.clamp(0.0, 1.0)) * spec.horizon;
        let mut burst_left = spec.burst_kills;
        let mut alive = vec![true; p];
        let mut alive_count = p;
        let mut events = Vec::new();
        let mut naturals = natural.into_iter().peekable();

        // Current index of an original id = alive originals before it.
        let current_index =
            |alive: &[bool], original: usize| alive[..original].iter().filter(|&&a| a).count();

        while events.len() < spec.max_events && alive_count > spec.min_alive.max(1) {
            let next_natural = naturals.peek().copied();
            let burst_due = burst_left > 0
                && next_natural.is_none_or(|(time, _)| burst_time <= time)
                && burst_time <= spec.horizon;
            if burst_due {
                // Kill a uniformly chosen alive processor, back-to-back.
                let nth = ((rng.gen::<f64>() * alive_count as f64) as usize).min(alive_count - 1);
                let original = alive
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| a)
                    .nth(nth)
                    .map(|(u, _)| u)
                    .expect("an alive processor exists");
                events.push(ChurnEvent {
                    time: burst_time,
                    delta: PlatformDelta::ProcessorFailed(current_index(&alive, original)),
                });
                alive[original] = false;
                alive_count -= 1;
                burst_left -= 1;
            } else if let Some((time, original)) = naturals.next() {
                if !alive[original] {
                    continue; // already taken by the burst
                }
                events.push(ChurnEvent {
                    time,
                    delta: PlatformDelta::ProcessorFailed(current_index(&alive, original)),
                });
                alive[original] = false;
                alive_count -= 1;
            } else {
                break;
            }
        }
        ChurnTrace {
            events,
            horizon: spec.horizon,
        }
    }

    /// The events as `(fraction of horizon, delta)` pairs — the shape
    /// `rpo-sim`'s fault plans and the churn bench consume.
    pub fn fractions(&self) -> Vec<(f64, PlatformDelta)> {
        self.events
            .iter()
            .map(|event| ((event.time / self.horizon).clamp(0.0, 1.0), event.delta))
            .collect()
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty (nothing failed inside the horizon).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::TaskChain;

    fn platform(p: usize, rate: f64) -> Platform {
        Platform::homogeneous(p, 1.0, rate, 1.0, 1e-5, 3).unwrap()
    }

    #[test]
    fn traces_are_reproducible_and_chronological() {
        let platform = platform(10, 1e-8);
        let spec = ChurnSpec::paper();
        let a = ChurnTrace::generate(&platform, &spec, 42);
        let b = ChurnTrace::generate(&platform, &spec, 42);
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].time <= w[1].time));
        assert_ne!(a, ChurnTrace::generate(&platform, &spec, 43));
    }

    #[test]
    fn indices_replay_cleanly_against_a_shrinking_platform() {
        // High rate → many natural failures; the trace must stay applicable
        // left-to-right (every index valid on the current platform).
        let mut current = platform(8, 1e-7);
        let chain = TaskChain::from_pairs(&[(10.0, 1.0), (20.0, 2.0)]).unwrap();
        let spec = ChurnSpec {
            horizon: 1e8,
            max_events: 6,
            min_alive: 1,
            burst_kills: 2,
            burst_at: 0.3,
        };
        let trace = ChurnTrace::generate(&current, &spec, 7);
        assert!(!trace.is_empty(), "expected events at this rate");
        for event in &trace.events {
            let (_, next) = event.delta.apply(&chain, &current).unwrap();
            assert_eq!(next.num_processors(), current.num_processors() - 1);
            current = next;
        }
        assert!(current.num_processors() >= spec.min_alive);
    }

    #[test]
    fn respects_min_alive_and_max_events() {
        let p = platform(5, 1e-2); // every processor fails almost immediately
        let spec = ChurnSpec {
            horizon: 1e6,
            max_events: 10,
            min_alive: 3,
            burst_kills: 0,
            burst_at: 0.0,
        };
        let trace = ChurnTrace::generate(&p, &spec, 1);
        assert_eq!(trace.len(), 2); // 5 alive → stop at 3
        let capped = ChurnTrace::generate(
            &p,
            &ChurnSpec {
                max_events: 1,
                ..spec
            },
            1,
        );
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn burst_fires_back_to_back_at_the_burst_instant() {
        let p = platform(10, 0.0); // no natural failures: burst only
        let spec = ChurnSpec {
            horizon: 1e9,
            max_events: 8,
            min_alive: 2,
            burst_kills: 3,
            burst_at: 0.5,
        };
        let trace = ChurnTrace::generate(&p, &spec, 5);
        assert_eq!(trace.len(), 3);
        assert!(trace.events.iter().all(|e| e.time == 0.5e9));
        let fractions = trace.fractions();
        assert!(fractions.iter().all(|&(f, _)| f == 0.5));
    }
}
