//! Random platform generation (homogeneous and heterogeneous).

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rpo_model::{Platform, Processor};
use serde::{Deserialize, Serialize};

/// Specification of a fully homogeneous platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HomogeneousPlatformSpec {
    /// Number of processors `p`.
    pub num_processors: usize,
    /// Common processor speed `s`.
    pub speed: f64,
    /// Common processor failure rate `λ_p` per time unit.
    pub failure_rate: f64,
    /// Link bandwidth `b`.
    pub bandwidth: f64,
    /// Link failure rate `λ_ℓ` per time unit.
    pub link_failure_rate: f64,
    /// Replication bound `K`.
    pub max_replication: usize,
}

impl HomogeneousPlatformSpec {
    /// The paper's homogeneous setup: 10 processors, speed 1, `λ_p = 10⁻⁸`,
    /// bandwidth 1, `λ_ℓ = 10⁻⁵`, `K = 3`.
    pub fn paper() -> Self {
        HomogeneousPlatformSpec {
            num_processors: 10,
            speed: 1.0,
            failure_rate: 1e-8,
            bandwidth: 1.0,
            link_failure_rate: 1e-5,
            max_replication: 3,
        }
    }

    /// The speed-5 homogeneous platform used as the comparison point of the
    /// heterogeneous experiments (Figures 12–15).
    pub fn paper_speed5() -> Self {
        HomogeneousPlatformSpec {
            speed: 5.0,
            ..Self::paper()
        }
    }

    /// Builds the platform (no randomness involved).
    pub fn build(&self) -> Platform {
        Platform::homogeneous(
            self.num_processors,
            self.speed,
            self.failure_rate,
            self.bandwidth,
            self.link_failure_rate,
            self.max_replication,
        )
        .expect("specification values are valid")
    }
}

/// Specification of a heterogeneous platform with uniformly drawn speeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousPlatformSpec {
    /// Number of processors `p`.
    pub num_processors: usize,
    /// Range `[min, max]` of processor speeds.
    pub speed_range: (f64, f64),
    /// Common processor failure rate `λ_p` per time unit.
    pub failure_rate: f64,
    /// Link bandwidth `b`.
    pub bandwidth: f64,
    /// Link failure rate `λ_ℓ` per time unit.
    pub link_failure_rate: f64,
    /// Replication bound `K`.
    pub max_replication: usize,
}

impl HeterogeneousPlatformSpec {
    /// The paper's heterogeneous setup: 10 processors, speeds uniform in
    /// `[1, 100]`, `λ_p = 10⁻⁸`, bandwidth 1, `λ_ℓ = 10⁻⁵`, `K = 3`.
    pub fn paper() -> Self {
        HeterogeneousPlatformSpec {
            num_processors: 10,
            speed_range: (1.0, 100.0),
            failure_rate: 1e-8,
            bandwidth: 1.0,
            link_failure_rate: 1e-5,
            max_replication: 3,
        }
    }

    /// Draws a platform from the specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification is degenerate.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Platform {
        assert!(
            self.num_processors > 0,
            "a platform needs at least one processor"
        );
        assert!(
            self.speed_range.0 > 0.0 && self.speed_range.1 >= self.speed_range.0,
            "invalid speed range"
        );
        let speed = Uniform::new_inclusive(self.speed_range.0, self.speed_range.1);
        let processors: Vec<Processor> = (0..self.num_processors)
            .map(|_| Processor::new(speed.sample(rng), self.failure_rate))
            .collect();
        Platform::new(
            processors,
            self.bandwidth,
            self.link_failure_rate,
            self.max_replication,
        )
        .expect("specification values are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_homogeneous_platform() {
        let p = HomogeneousPlatformSpec::paper().build();
        assert_eq!(p.num_processors(), 10);
        assert!(p.is_homogeneous());
        assert_eq!(p.speed(0), 1.0);
        assert_eq!(p.failure_rate(0), 1e-8);
        assert_eq!(p.link_failure_rate(), 1e-5);
        assert_eq!(p.max_replication(), 3);
        let p5 = HomogeneousPlatformSpec::paper_speed5().build();
        assert_eq!(p5.speed(3), 5.0);
    }

    #[test]
    fn paper_heterogeneous_platform_speeds_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = HeterogeneousPlatformSpec::paper().generate(&mut rng);
        assert_eq!(p.num_processors(), 10);
        for proc in p.processors() {
            assert!((1.0..=100.0).contains(&proc.speed));
            assert_eq!(proc.failure_rate, 1e-8);
        }
    }

    #[test]
    fn heterogeneous_generation_is_deterministic() {
        let a = HeterogeneousPlatformSpec::paper().generate(&mut ChaCha8Rng::seed_from_u64(5));
        let b = HeterogeneousPlatformSpec::paper().generate(&mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid speed range")]
    fn degenerate_speed_range_panics() {
        let spec = HeterogeneousPlatformSpec {
            speed_range: (5.0, 1.0),
            ..HeterogeneousPlatformSpec::paper()
        };
        spec.generate(&mut ChaCha8Rng::seed_from_u64(1));
    }
}
