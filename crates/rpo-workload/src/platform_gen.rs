//! Random platform generation (homogeneous and heterogeneous).

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rpo_model::{Platform, Processor};
use serde::{Deserialize, Serialize};

/// Specification of a fully homogeneous platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HomogeneousPlatformSpec {
    /// Number of processors `p`.
    pub num_processors: usize,
    /// Common processor speed `s`.
    pub speed: f64,
    /// Common processor failure rate `λ_p` per time unit.
    pub failure_rate: f64,
    /// Link bandwidth `b`.
    pub bandwidth: f64,
    /// Link failure rate `λ_ℓ` per time unit.
    pub link_failure_rate: f64,
    /// Replication bound `K`.
    pub max_replication: usize,
}

impl HomogeneousPlatformSpec {
    /// The paper's homogeneous setup: 10 processors, speed 1, `λ_p = 10⁻⁸`,
    /// bandwidth 1, `λ_ℓ = 10⁻⁵`, `K = 3`.
    pub fn paper() -> Self {
        HomogeneousPlatformSpec {
            num_processors: 10,
            speed: 1.0,
            failure_rate: 1e-8,
            bandwidth: 1.0,
            link_failure_rate: 1e-5,
            max_replication: 3,
        }
    }

    /// The speed-5 homogeneous platform used as the comparison point of the
    /// heterogeneous experiments (Figures 12–15).
    pub fn paper_speed5() -> Self {
        HomogeneousPlatformSpec {
            speed: 5.0,
            ..Self::paper()
        }
    }

    /// Builds the platform (no randomness involved).
    pub fn build(&self) -> Platform {
        Platform::homogeneous(
            self.num_processors,
            self.speed,
            self.failure_rate,
            self.bandwidth,
            self.link_failure_rate,
            self.max_replication,
        )
        .expect("specification values are valid")
    }
}

/// Specification of a heterogeneous platform with uniformly drawn speeds.
///
/// `num_classes` controls the *class structure*: when it equals
/// `num_processors` (the paper's setup) every processor draws its own speed;
/// when smaller, only `num_classes` speeds are drawn and the processors are
/// distributed round-robin over them — the "few hardware generations" shape
/// real platforms have, and the regime where the exact class-level
/// heterogeneous DP applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousPlatformSpec {
    /// Number of processors `p`.
    pub num_processors: usize,
    /// Number of distinct `(speed, failure rate)` classes (clamped to
    /// `[1, num_processors]`). `0` — the serde default, so spec JSON from
    /// before this field existed still loads — means "one class per
    /// processor", the original behavior.
    #[serde(default)]
    pub num_classes: usize,
    /// Range `[min, max]` of processor speeds.
    pub speed_range: (f64, f64),
    /// Common processor failure rate `λ_p` per time unit.
    pub failure_rate: f64,
    /// Link bandwidth `b`.
    pub bandwidth: f64,
    /// Link failure rate `λ_ℓ` per time unit.
    pub link_failure_rate: f64,
    /// Replication bound `K`.
    pub max_replication: usize,
}

impl HeterogeneousPlatformSpec {
    /// The paper's heterogeneous setup: 10 processors, speeds uniform in
    /// `[1, 100]`, `λ_p = 10⁻⁸`, bandwidth 1, `λ_ℓ = 10⁻⁵`, `K = 3` —
    /// every processor its own class.
    pub fn paper() -> Self {
        HeterogeneousPlatformSpec {
            num_processors: 10,
            num_classes: 10,
            speed_range: (1.0, 100.0),
            failure_rate: 1e-8,
            bandwidth: 1.0,
            link_failure_rate: 1e-5,
            max_replication: 3,
        }
    }

    /// The paper's 10-processor setup restricted to **three** processor
    /// classes (three drawn speeds, processors distributed round-robin):
    /// the class-structured regime of the exact heterogeneous DP.
    pub fn paper_classes() -> Self {
        HeterogeneousPlatformSpec {
            num_classes: 3,
            ..Self::paper()
        }
    }

    /// Draws a platform from the specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification is degenerate.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Platform {
        assert!(
            self.num_processors > 0,
            "a platform needs at least one processor"
        );
        assert!(
            self.speed_range.0 > 0.0 && self.speed_range.1 >= self.speed_range.0,
            "invalid speed range"
        );
        let speed = Uniform::new_inclusive(self.speed_range.0, self.speed_range.1);
        let classes = if self.num_classes == 0 {
            self.num_processors // unset: one class per processor
        } else {
            self.num_classes.clamp(1, self.num_processors)
        };
        let processors: Vec<Processor> = if classes == self.num_processors {
            // One draw per processor — bit-identical to the pre-class
            // generator, so existing seeds reproduce the same platforms.
            (0..self.num_processors)
                .map(|_| Processor::new(speed.sample(rng), self.failure_rate))
                .collect()
        } else {
            let class_speeds: Vec<f64> = (0..classes).map(|_| speed.sample(rng)).collect();
            (0..self.num_processors)
                .map(|u| Processor::new(class_speeds[u % classes], self.failure_rate))
                .collect()
        };
        Platform::new(
            processors,
            self.bandwidth,
            self.link_failure_rate,
            self.max_replication,
        )
        .expect("specification values are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_homogeneous_platform() {
        let p = HomogeneousPlatformSpec::paper().build();
        assert_eq!(p.num_processors(), 10);
        assert!(p.is_homogeneous());
        assert_eq!(p.speed(0), 1.0);
        assert_eq!(p.failure_rate(0), 1e-8);
        assert_eq!(p.link_failure_rate(), 1e-5);
        assert_eq!(p.max_replication(), 3);
        let p5 = HomogeneousPlatformSpec::paper_speed5().build();
        assert_eq!(p5.speed(3), 5.0);
    }

    #[test]
    fn paper_heterogeneous_platform_speeds_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = HeterogeneousPlatformSpec::paper().generate(&mut rng);
        assert_eq!(p.num_processors(), 10);
        for proc in p.processors() {
            assert!((1.0..=100.0).contains(&proc.speed));
            assert_eq!(proc.failure_rate, 1e-8);
        }
    }

    #[test]
    fn spec_json_without_num_classes_still_loads_with_old_semantics() {
        // Spec files written before the `num_classes` field existed must
        // keep deserializing — and behave as "one class per processor".
        let json = r#"{"num_processors":4,"speed_range":[1.0,100.0],"failure_rate":1e-8,
                       "bandwidth":1.0,"link_failure_rate":1e-5,"max_replication":3}"#;
        let spec: HeterogeneousPlatformSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.num_classes, 0);
        let legacy = spec.generate(&mut ChaCha8Rng::seed_from_u64(7));
        let explicit = HeterogeneousPlatformSpec {
            num_processors: 4,
            num_classes: 4,
            ..HeterogeneousPlatformSpec::paper()
        }
        .generate(&mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(legacy, explicit);
    }

    #[test]
    fn class_structured_platforms_have_the_requested_class_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let p = HeterogeneousPlatformSpec::paper_classes().generate(&mut rng);
        assert_eq!(p.num_processors(), 10);
        let mut speeds: Vec<f64> = p.processors().iter().map(|q| q.speed).collect();
        speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        speeds.dedup();
        assert_eq!(speeds.len(), 3, "expected exactly three distinct speeds");
        // Round-robin distribution: members split 4/3/3.
        for class_speed in &speeds {
            let members = p
                .processors()
                .iter()
                .filter(|q| q.speed == *class_speed)
                .count();
            assert!((3..=4).contains(&members));
        }
    }

    #[test]
    fn heterogeneous_generation_is_deterministic() {
        let a = HeterogeneousPlatformSpec::paper().generate(&mut ChaCha8Rng::seed_from_u64(5));
        let b = HeterogeneousPlatformSpec::paper().generate(&mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid speed range")]
    fn degenerate_speed_range_panics() {
        let spec = HeterogeneousPlatformSpec {
            speed_range: (5.0, 1.0),
            ..HeterogeneousPlatformSpec::paper()
        };
        spec.generate(&mut ChaCha8Rng::seed_from_u64(1));
    }
}
