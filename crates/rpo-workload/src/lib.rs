//! Seeded random workload and platform generators matching the experimental
//! setup of Section 8 of the paper.
//!
//! The paper generates 100 random instances per experiment, each with a chain
//! of 15 tasks (computation costs uniform in `[1, 100]`, communication costs
//! uniform in `[1, 10]`) and a platform of 10 processors with `K = 3`:
//!
//! * homogeneous experiments: speed 1 (or speed 5 for the comparison runs of
//!   Figures 12–15), `λ_p = 10⁻⁸`, `λ_ℓ = 10⁻⁵`, bandwidth 1;
//! * heterogeneous experiments: speeds uniform in `[1, 100]`, `λ_p = 10⁻⁸`.
//!
//! All generators are deterministic given a seed (ChaCha8), so every figure,
//! test and benchmark of this repository is reproducible bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod chain_gen;
pub mod churn;
pub mod instance;
pub mod platform_gen;
pub mod requests;

pub use bounds::{BoundedInstance, BoundedInstanceStream, BoundsSpec};
pub use chain_gen::ChainSpec;
pub use churn::{ChurnEvent, ChurnSpec, ChurnTrace};
pub use instance::{ExperimentInstance, InstanceGenerator, InstanceStream};
pub use platform_gen::{HeterogeneousPlatformSpec, HomogeneousPlatformSpec};
pub use requests::{GeneratedRequest, RequestSpec, RequestStream};
