//! Random task-chain generation.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rpo_model::{Task, TaskChain};
use serde::{Deserialize, Serialize};

/// Specification of a random task chain: number of tasks and the uniform
/// ranges from which computation and communication costs are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// Number of tasks `n`.
    pub num_tasks: usize,
    /// Range `[min, max]` of the computation costs `w_i`.
    pub work_range: (f64, f64),
    /// Range `[min, max]` of the communication costs `o_i`.
    pub output_range: (f64, f64),
}

impl ChainSpec {
    /// The paper's experimental setup: 15 tasks, `w_i ∈ [1, 100]`,
    /// `o_i ∈ [1, 10]`.
    pub fn paper() -> Self {
        ChainSpec {
            num_tasks: 15,
            work_range: (1.0, 100.0),
            output_range: (1.0, 10.0),
        }
    }

    /// Same distribution with a different chain length.
    pub fn paper_with_tasks(num_tasks: usize) -> Self {
        ChainSpec {
            num_tasks,
            ..Self::paper()
        }
    }

    /// Draws a chain from the specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification is degenerate (no task, empty ranges or
    /// non-positive work lower bound).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskChain {
        assert!(self.num_tasks > 0, "a chain needs at least one task");
        assert!(
            self.work_range.0 > 0.0 && self.work_range.1 >= self.work_range.0,
            "invalid work range"
        );
        assert!(
            self.output_range.0 >= 0.0 && self.output_range.1 >= self.output_range.0,
            "invalid output range"
        );
        let work = Uniform::new_inclusive(self.work_range.0, self.work_range.1);
        let output = Uniform::new_inclusive(self.output_range.0, self.output_range.1);
        let tasks: Vec<Task> = (0..self.num_tasks)
            .map(|_| Task::new(work.sample(rng), output.sample(rng)))
            .collect();
        TaskChain::new(tasks).expect("generated costs are within valid ranges")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_spec_produces_costs_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let chain = ChainSpec::paper().generate(&mut rng);
        assert_eq!(chain.len(), 15);
        for task in chain.tasks() {
            assert!((1.0..=100.0).contains(&task.work));
            assert!((1.0..=10.0).contains(&task.output_size));
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = ChainSpec::paper().generate(&mut ChaCha8Rng::seed_from_u64(7));
        let b = ChainSpec::paper().generate(&mut ChaCha8Rng::seed_from_u64(7));
        let c = ChainSpec::paper().generate(&mut ChaCha8Rng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn custom_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let chain = ChainSpec::paper_with_tasks(6).generate(&mut rng);
        assert_eq!(chain.len(), 6);
    }

    #[test]
    #[should_panic(expected = "invalid work range")]
    fn degenerate_spec_panics() {
        let spec = ChainSpec {
            num_tasks: 3,
            work_range: (0.0, 10.0),
            output_range: (1.0, 2.0),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        spec.generate(&mut rng);
    }
}
