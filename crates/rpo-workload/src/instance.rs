//! Complete experiment instances (chain + platforms), generated in batches.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rpo_model::{Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::{ChainSpec, HeterogeneousPlatformSpec, HomogeneousPlatformSpec};

/// One experiment instance, as used in Section 8: a random chain together
/// with a homogeneous platform and a heterogeneous platform (the paper's
/// heterogeneous experiments run the same chain on both and compare).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentInstance {
    /// Index of the instance within its batch.
    pub index: usize,
    /// The task chain.
    pub chain: TaskChain,
    /// The homogeneous platform.
    pub homogeneous: Platform,
    /// The heterogeneous platform.
    pub heterogeneous: Platform,
}

/// Deterministic generator of experiment instances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceGenerator {
    /// Chain specification.
    pub chain: ChainSpec,
    /// Homogeneous platform specification.
    pub homogeneous: HomogeneousPlatformSpec,
    /// Heterogeneous platform specification.
    pub heterogeneous: HeterogeneousPlatformSpec,
    /// Base seed; instance `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl InstanceGenerator {
    /// The setup of the homogeneous experiments (Figures 6–11): speed-1
    /// homogeneous platform.
    pub fn paper_homogeneous(base_seed: u64) -> Self {
        InstanceGenerator {
            chain: ChainSpec::paper(),
            homogeneous: HomogeneousPlatformSpec::paper(),
            heterogeneous: HeterogeneousPlatformSpec::paper(),
            base_seed,
        }
    }

    /// The setup of the heterogeneous experiments (Figures 12–15): the
    /// homogeneous comparison platform has speed 5.
    pub fn paper_heterogeneous(base_seed: u64) -> Self {
        InstanceGenerator {
            chain: ChainSpec::paper(),
            homogeneous: HomogeneousPlatformSpec::paper_speed5(),
            heterogeneous: HeterogeneousPlatformSpec::paper(),
            base_seed,
        }
    }

    /// The class-structured heterogeneous setup: the paper's 10-processor
    /// platform restricted to three `(speed, λ)` classes — the regime where
    /// the exact class-level heterogeneous DP (`algo_het`) applies.
    pub fn paper_heterogeneous_classes(base_seed: u64) -> Self {
        InstanceGenerator {
            heterogeneous: HeterogeneousPlatformSpec::paper_classes(),
            ..Self::paper_heterogeneous(base_seed)
        }
    }

    /// Generates the `index`-th instance (deterministic in `base_seed` and
    /// `index`).
    pub fn instance(&self, index: usize) -> ExperimentInstance {
        rpo_obs::counter!("workload.instances_generated").inc();
        let mut rng = ChaCha8Rng::seed_from_u64(self.base_seed.wrapping_add(index as u64));
        let chain = self.chain.generate(&mut rng);
        let heterogeneous = self.heterogeneous.generate(&mut rng);
        ExperimentInstance {
            index,
            chain,
            homogeneous: self.homogeneous.build(),
            heterogeneous,
        }
    }

    /// Generates a batch of `count` instances.
    pub fn batch(&self, count: usize) -> Vec<ExperimentInstance> {
        (0..count).map(|i| self.instance(i)).collect()
    }

    /// A lazy stream over `count` instances: instance `i` is generated on
    /// demand, so arbitrarily long batches can be driven without holding
    /// them all in memory. The stream is deterministic in `base_seed`.
    pub fn stream(&self, count: usize) -> InstanceStream {
        InstanceStream {
            generator: *self,
            next: 0,
            count,
        }
    }
}

/// A lazy, deterministic iterator over generated experiment instances.
#[derive(Debug, Clone)]
pub struct InstanceStream {
    generator: InstanceGenerator,
    next: usize,
    count: usize,
}

impl Iterator for InstanceStream {
    type Item = ExperimentInstance;

    fn next(&mut self) -> Option<ExperimentInstance> {
        if self.next >= self.count {
            return None;
        }
        let instance = self.generator.instance(self.next);
        self.next += 1;
        Some(instance)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.count - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for InstanceStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_has_requested_size_and_distinct_chains() {
        let generator = InstanceGenerator::paper_homogeneous(2024);
        let batch = generator.batch(10);
        assert_eq!(batch.len(), 10);
        for (i, instance) in batch.iter().enumerate() {
            assert_eq!(instance.index, i);
            assert_eq!(instance.chain.len(), 15);
            assert!(instance.homogeneous.is_homogeneous());
        }
        assert_ne!(batch[0].chain, batch[1].chain);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = InstanceGenerator::paper_homogeneous(7).instance(3);
        let b = InstanceGenerator::paper_homogeneous(7).instance(3);
        assert_eq!(a, b);
    }

    #[test]
    fn heterogeneous_setup_uses_speed5_homogeneous_platform() {
        let generator = InstanceGenerator::paper_heterogeneous(1);
        let instance = generator.instance(0);
        assert_eq!(instance.homogeneous.speed(0), 5.0);
        assert!(!instance.heterogeneous.is_homogeneous());
    }

    #[test]
    fn class_setup_yields_few_class_heterogeneous_platforms() {
        let generator = InstanceGenerator::paper_heterogeneous_classes(3);
        for instance in generator.batch(5) {
            assert!(!instance.heterogeneous.is_homogeneous());
            let mut speeds: Vec<f64> = instance
                .heterogeneous
                .processors()
                .iter()
                .map(|p| p.speed)
                .collect();
            speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
            speeds.dedup();
            assert!(speeds.len() <= 3);
            assert_eq!(instance.homogeneous.speed(0), 5.0);
        }
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let a = InstanceGenerator::paper_homogeneous(1).instance(0);
        let b = InstanceGenerator::paper_homogeneous(2).instance(0);
        assert_ne!(a.chain, b.chain);
    }
}
