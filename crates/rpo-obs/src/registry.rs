//! The unified metrics registry: counters, gauges, and log-bucketed latency
//! histograms behind cheap cloneable handles.
//!
//! # Sharding and the overhead contract
//!
//! Counter and histogram state is sharded **per thread**: the first time a
//! thread touches a metric it registers one private [`Slot`] with the
//! registry and caches the `Arc` in a thread-local table. From then on the
//! hot path is an unsynchronized read-modify-write on the thread's own slot
//! (`Relaxed` load + store — a plain memory increment, no locked
//! instructions, no contention), guarded by a single relaxed atomic load of
//! the registry's enabled flag. The registry's mutex is taken only on
//! handle registration, first-touch slot creation, and
//! [`Registry::snapshot`], which merges every thread's shard into one
//! [`MetricsSnapshot`].
//!
//! Counts written before a thread joins (or before any other
//! happens-before edge to the snapshotting thread) are merged exactly; a
//! snapshot raced against live writers may lag individual shards by the
//! increments still in flight, but never corrupts them — every counter is
//! single-writer.
//!
//! # Histogram buckets
//!
//! Histograms record `u64` nanoseconds into HDR-style log buckets: values
//! below 8 are exact, and every later bucket spans `1/8` of its octave, so
//! any recorded value lands in a bucket whose bounds are within ~6% of it.
//! Quantile extraction ([`HistogramSnapshot::quantile`]) is exact over the
//! bucketed distribution: the returned value is the representative of the
//! bucket holding the requested rank, clamped to the exact observed
//! min/max.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Sub-bucket resolution: 2³ = 8 buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` nanosecond range.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// The log bucket a value lands in (HDR scheme: exact below 2³, then 8
/// sub-buckets per octave).
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((msb - SUB_BITS + 1) as usize * SUB) + ((v >> shift) as usize - SUB)
}

/// Inclusive lower bound of bucket `index`.
pub(crate) fn bucket_lower(index: usize) -> u64 {
    let octave = index / SUB;
    if octave == 0 {
        return index as u64;
    }
    ((SUB + index % SUB) as u64) << (octave - 1)
}

/// Width (number of representable values) of bucket `index`.
fn bucket_width(index: usize) -> u64 {
    let octave = index / SUB;
    if octave == 0 {
        1
    } else {
        1u64 << (octave - 1)
    }
}

/// Midpoint representative of bucket `index` (what quantiles report).
fn bucket_representative(index: usize) -> u64 {
    bucket_lower(index) + (bucket_width(index) - 1) / 2
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// One thread's private accumulator for one metric. Only the owning thread
/// writes (unsynchronized `Relaxed` load/store); the snapshotter only
/// reads.
struct Slot {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Slot {
    fn new(kind: Kind) -> Self {
        let buckets = match kind {
            Kind::Histogram => (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            _ => Box::default(),
        };
        Slot {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets,
        }
    }

    /// Owner-thread unsynchronized add (plain increment, no RMW atomics).
    #[inline]
    fn bump(cell: &AtomicU64, n: u64) {
        cell.store(
            cell.load(Ordering::Relaxed).wrapping_add(n),
            Ordering::Relaxed,
        );
    }
}

enum Store {
    /// Per-thread slots, merged on snapshot (counters and histograms).
    Sharded(Vec<Arc<Slot>>),
    /// One shared cell holding `f64` bits, last-write-wins (gauges).
    Gauge(Arc<AtomicU64>),
}

struct Metric {
    name: String,
    kind: Kind,
    store: Store,
}

struct Inner {
    metrics: Vec<Metric>,
    index: HashMap<String, usize>,
}

struct RegistryCore {
    /// Process-unique id keying the thread-local shard caches.
    id: u64,
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

/// A unified metrics registry. Cloning is cheap (`Arc`); all clones share
/// the same metrics. Most code uses the process-wide [`crate::global`]
/// registry through the [`crate::counter!`] / [`crate::histogram!`]
/// macros.
#[derive(Clone)]
pub struct Registry {
    core: Arc<RegistryCore>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

struct ThreadShard {
    registry: u64,
    slots: Vec<Option<Arc<Slot>>>,
}

thread_local! {
    static SHARDS: RefCell<Vec<ThreadShard>> = const { RefCell::new(Vec::new()) };
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Registry {
            core: Arc::new(RegistryCore {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(true),
                inner: Mutex::new(Inner {
                    metrics: Vec::new(),
                    index: HashMap::new(),
                }),
            }),
        }
    }

    /// The process-wide registry every instrumentation site reports to by
    /// default.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Whether instrumentation is live: the compile-time `obs` feature AND
    /// the runtime toggle. Disabled, every metric operation is one relaxed
    /// atomic load and a branch; without the feature it is constant-false
    /// and compiles away entirely.
    #[inline]
    pub fn enabled(&self) -> bool {
        cfg!(feature = "obs") && self.core.enabled.load(Ordering::Relaxed)
    }

    /// Flips the runtime toggle (metrics recorded while disabled are
    /// silently dropped; previously recorded values are kept).
    pub fn set_enabled(&self, on: bool) {
        self.core.enabled.store(on, Ordering::Relaxed);
    }

    fn register(&self, name: &str, kind: Kind) -> usize {
        let mut inner = self.core.inner.lock().expect("registry lock poisoned");
        if let Some(&id) = inner.index.get(name) {
            assert_eq!(
                inner.metrics[id].kind, kind,
                "metric {name:?} registered twice with different kinds"
            );
            return id;
        }
        let id = inner.metrics.len();
        let store = match kind {
            Kind::Gauge => Store::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
            _ => Store::Sharded(Vec::new()),
        };
        inner.metrics.push(Metric {
            name: name.to_string(),
            kind,
            store,
        });
        inner.index.insert(name.to_string(), id);
        id
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            registry: self.clone(),
            id: self.register(name, Kind::Counter),
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            registry: self.clone(),
            id: self.register(name, Kind::Histogram),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let id = self.register(name, Kind::Gauge);
        let inner = self.core.inner.lock().expect("registry lock poisoned");
        let Store::Gauge(cell) = &inner.metrics[id].store else {
            unreachable!("gauge ids always hold gauge stores")
        };
        Gauge {
            registry: self.clone(),
            cell: Arc::clone(cell),
        }
    }

    /// Runs `body` against the calling thread's slot for metric `id`,
    /// creating and registering the slot on this thread's first touch.
    fn with_slot(&self, id: usize, body: impl FnOnce(&Slot)) {
        SHARDS.with(|cell| {
            let mut shards = cell.borrow_mut();
            let shard = match shards.iter_mut().position(|s| s.registry == self.core.id) {
                Some(at) => &mut shards[at],
                None => {
                    shards.push(ThreadShard {
                        registry: self.core.id,
                        slots: Vec::new(),
                    });
                    shards.last_mut().expect("just pushed")
                }
            };
            if shard.slots.len() <= id {
                shard.slots.resize(id + 1, None);
            }
            let slot = shard.slots[id].get_or_insert_with(|| {
                // First touch by this thread: create the private slot and
                // register it with the metric so snapshots see it (the only
                // lock on the metric hot path, paid once per thread).
                let mut inner = self.core.inner.lock().expect("registry lock poisoned");
                let metric = &mut inner.metrics[id];
                let slot = Arc::new(Slot::new(metric.kind));
                match &mut metric.store {
                    Store::Sharded(slots) => slots.push(Arc::clone(&slot)),
                    Store::Gauge(_) => unreachable!("gauges never take thread slots"),
                }
                slot
            });
            body(slot);
        });
    }

    /// Merges every thread's shard into one serializable snapshot. Metrics
    /// are sorted by name; quantiles are computed at snapshot time.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.core.inner.lock().expect("registry lock poisoned");
        let mut snapshot = MetricsSnapshot::default();
        for metric in &inner.metrics {
            match (&metric.store, metric.kind) {
                (Store::Gauge(cell), _) => snapshot.gauges.push(GaugeSnapshot {
                    name: metric.name.clone(),
                    value: f64::from_bits(cell.load(Ordering::Relaxed)),
                }),
                (Store::Sharded(slots), Kind::Counter) => {
                    let value = slots
                        .iter()
                        .map(|s| s.count.load(Ordering::Relaxed))
                        .fold(0u64, u64::wrapping_add);
                    snapshot.counters.push(CounterSnapshot {
                        name: metric.name.clone(),
                        value,
                    });
                }
                (Store::Sharded(slots), _) => {
                    let (mut count, mut sum) = (0u64, 0u64);
                    let (mut min, mut max) = (u64::MAX, 0u64);
                    let mut buckets = vec![0u64; NUM_BUCKETS];
                    for slot in slots {
                        count = count.wrapping_add(slot.count.load(Ordering::Relaxed));
                        sum = sum.wrapping_add(slot.sum.load(Ordering::Relaxed));
                        min = min.min(slot.min.load(Ordering::Relaxed));
                        max = max.max(slot.max.load(Ordering::Relaxed));
                        for (total, bucket) in buckets.iter_mut().zip(slot.buckets.iter()) {
                            *total = total.wrapping_add(bucket.load(Ordering::Relaxed));
                        }
                    }
                    let sparse = buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(index, &c)| BucketSnapshot {
                            lower_nanos: bucket_lower(index),
                            count: c,
                        })
                        .collect();
                    snapshot.histograms.push(finalize_histogram(
                        metric.name.clone(),
                        count,
                        sum,
                        if count == 0 { 0 } else { min },
                        max,
                        sparse,
                    ));
                }
            }
        }
        snapshot.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter {
    registry: Registry,
    id: usize,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the calling thread's shard (unsynchronized increment;
    /// one relaxed atomic load when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.registry.enabled() {
            return;
        }
        self.registry.with_slot(self.id, |slot| {
            Slot::bump(&slot.count, n);
        });
    }
}

/// A last-write-wins gauge handle (stored as `f64`).
#[derive(Clone)]
pub struct Gauge {
    registry: Registry,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if !self.registry.enabled() {
            return;
        }
        self.cell.store(value.to_bits(), Ordering::Relaxed);
    }
}

/// A log-bucketed latency histogram handle (values in nanoseconds).
#[derive(Clone)]
pub struct Histogram {
    registry: Registry,
    id: usize,
}

impl Histogram {
    /// Records one value, in nanoseconds.
    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        if !self.registry.enabled() {
            return;
        }
        self.registry.with_slot(self.id, |slot| {
            Slot::bump(&slot.buckets[bucket_index(nanos)], 1);
            Slot::bump(&slot.count, 1);
            Slot::bump(&slot.sum, nanos);
            if nanos < slot.min.load(Ordering::Relaxed) {
                slot.min.store(nanos, Ordering::Relaxed);
            }
            if nanos > slot.max.load(Ordering::Relaxed) {
                slot.max.store(nanos, Ordering::Relaxed);
            }
        });
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, duration: Duration) {
        self.record_nanos(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Times `body` and records its wall-clock duration.
    pub fn time<R>(&self, body: impl FnOnce() -> R) -> R {
        if !self.registry.enabled() {
            return body();
        }
        let start = Instant::now();
        let result = body();
        self.record(start.elapsed());
        result
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A merged, serializable view of every metric in a registry at one point
/// in time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// One counter's merged value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Sum across all thread shards.
    pub value: u64,
}

/// One gauge's last-written value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// One sparse histogram bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Inclusive lower bound of the bucket, in nanoseconds.
    pub lower_nanos: u64,
    /// Recorded values in the bucket.
    pub count: u64,
}

/// One histogram's merged distribution, with pre-extracted percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total recorded values.
    pub count: u64,
    /// Sum of all recorded values, in nanoseconds.
    pub sum_nanos: u64,
    /// Exact smallest recorded value (0 when empty).
    pub min_nanos: u64,
    /// Exact largest recorded value (0 when empty).
    pub max_nanos: u64,
    /// Median, in nanoseconds (bucket representative; see
    /// [`HistogramSnapshot::quantile`]).
    pub p50_nanos: f64,
    /// 95th percentile, in nanoseconds.
    pub p95_nanos: f64,
    /// 99th percentile, in nanoseconds.
    pub p99_nanos: f64,
    /// 99.9th percentile, in nanoseconds.
    pub p999_nanos: f64,
    /// Sparse nonzero buckets, ascending by lower bound.
    pub buckets: Vec<BucketSnapshot>,
}

fn finalize_histogram(
    name: String,
    count: u64,
    sum_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
    buckets: Vec<BucketSnapshot>,
) -> HistogramSnapshot {
    let mut snapshot = HistogramSnapshot {
        name,
        count,
        sum_nanos,
        min_nanos,
        max_nanos,
        p50_nanos: 0.0,
        p95_nanos: 0.0,
        p99_nanos: 0.0,
        p999_nanos: 0.0,
        buckets,
    };
    snapshot.p50_nanos = snapshot.quantile(0.50);
    snapshot.p95_nanos = snapshot.quantile(0.95);
    snapshot.p99_nanos = snapshot.quantile(0.99);
    snapshot.p999_nanos = snapshot.quantile(0.999);
    snapshot
}

impl HistogramSnapshot {
    /// Mean recorded value, in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: exact rank selection over the
    /// bucketed distribution, reporting the holding bucket's midpoint
    /// clamped to the observed min/max (so quantiles are within the bucket
    /// resolution — ~6% relative — of the true order statistic, and p0/p100
    /// are exact).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for bucket in &self.buckets {
            seen += bucket.count;
            if seen >= rank {
                let representative = bucket_representative(bucket_index(bucket.lower_nanos));
                return (representative.clamp(self.min_nanos, self.max_nanos)) as f64;
            }
        }
        self.max_nanos as f64
    }
}

impl MetricsSnapshot {
    /// The value of counter `name`, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The difference `self − baseline`: counters and histogram buckets
    /// subtract by name (metrics absent from `baseline` pass through
    /// unchanged), gauges keep `self`'s value, and histogram percentiles
    /// are recomputed from the subtracted buckets. `min`/`max` stay
    /// cumulative (`self`'s values) — exact extremes of a window would need
    /// per-window recording. Used to scope the process-wide registry to one
    /// batch or bench section.
    pub fn delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut delta = MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name.clone(),
                    value: c
                        .value
                        .saturating_sub(baseline.counter_value(&c.name).unwrap_or(0)),
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: Vec::new(),
        };
        for histogram in &self.histograms {
            let base = baseline.histogram(&histogram.name);
            let base_count = |lower: u64| -> u64 {
                base.and_then(|b| b.buckets.iter().find(|bk| bk.lower_nanos == lower))
                    .map_or(0, |bk| bk.count)
            };
            let buckets: Vec<BucketSnapshot> = histogram
                .buckets
                .iter()
                .map(|bucket| BucketSnapshot {
                    lower_nanos: bucket.lower_nanos,
                    count: bucket.count.saturating_sub(base_count(bucket.lower_nanos)),
                })
                .filter(|bucket| bucket.count > 0)
                .collect();
            delta.histograms.push(finalize_histogram(
                histogram.name.clone(),
                histogram.count.saturating_sub(base.map_or(0, |b| b.count)),
                histogram
                    .sum_nanos
                    .saturating_sub(base.map_or(0, |b| b.sum_nanos)),
                histogram.min_nanos,
                histogram.max_nanos,
                buckets,
            ));
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_eight_and_contiguous_above() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
        // Every bucket's lower bound maps back to the bucket, and bucket
        // indexes are monotone in the value.
        let mut previous = 0;
        for v in [
            8u64,
            9,
            15,
            16,
            31,
            32,
            1000,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = bucket_index(v);
            assert!(index >= previous, "bucket index must be monotone");
            previous = index;
            assert!(bucket_lower(index) <= v);
            assert!(index + 1 >= NUM_BUCKETS || v < bucket_lower(index + 1));
            assert_eq!(bucket_index(bucket_lower(index)), index);
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn histogram_percentiles_are_exact_on_known_distributions() {
        let registry = Registry::new();
        let histogram = registry.histogram("latency");
        // 1..=1000: every percentile of the true distribution is known.
        for v in 1..=1000u64 {
            histogram.record_nanos(v);
        }
        let snapshot = registry.snapshot();
        let h = snapshot.histogram("latency").unwrap();
        assert_eq!(h.count, 1000);
        assert_eq!(h.min_nanos, 1);
        assert_eq!(h.max_nanos, 1000);
        assert_eq!(h.sum_nanos, 500_500);
        // Bucket resolution is 1/8 of an octave: quantiles land within ~7%
        // of the true order statistic.
        for (q, exact) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0), (0.999, 999.0)] {
            let measured = h.quantile(q);
            assert!(
                (measured - exact).abs() / exact < 0.07,
                "q{q}: measured {measured}, exact {exact}"
            );
        }
        assert_eq!(h.p50_nanos, h.quantile(0.50));
        // Total bucket mass equals the count.
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 1000);
    }

    #[test]
    fn single_value_histogram_is_exact_everywhere() {
        let registry = Registry::new();
        let histogram = registry.histogram("latency");
        for _ in 0..10 {
            histogram.record_nanos(12_345);
        }
        let snapshot = registry.snapshot();
        let h = snapshot.histogram("latency").unwrap();
        // One bucket; min == max clamps every quantile to the exact value.
        assert_eq!(h.p50_nanos, 12_345.0);
        assert_eq!(h.p999_nanos, 12_345.0);
    }

    #[test]
    fn concurrent_increments_merge_deterministically() {
        let registry = Registry::new();
        let counter = registry.counter("hits");
        let histogram = registry.histogram("latency");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let counter = counter.clone();
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.inc();
                        // Seeded per-thread values: the merged distribution
                        // is the same whatever the interleaving.
                        histogram.record_nanos((t as u64 * PER_THREAD + i) % 997 + 1);
                    }
                });
            }
        });
        // All writer threads joined: the snapshot must be exact.
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter_value("hits"),
            Some(THREADS as u64 * PER_THREAD)
        );
        let h = snapshot.histogram("latency").unwrap();
        assert_eq!(h.count, THREADS as u64 * PER_THREAD);
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), h.count);
        assert_eq!(h.min_nanos, 1);
        assert_eq!(h.max_nanos, 997);
        // Determinism: a second hammer over a fresh registry produces the
        // identical snapshot (same buckets, same percentiles).
        let registry2 = Registry::new();
        let counter2 = registry2.counter("hits");
        let histogram2 = registry2.histogram("latency");
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let counter2 = counter2.clone();
                let histogram2 = histogram2.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter2.inc();
                        histogram2.record_nanos((t as u64 * PER_THREAD + i) % 997 + 1);
                    }
                });
            }
        });
        assert_eq!(snapshot, registry2.snapshot());
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = Registry::new();
        let counter = registry.counter("hits");
        let histogram = registry.histogram("latency");
        let gauge = registry.gauge("depth");
        registry.set_enabled(false);
        counter.add(7);
        histogram.record_nanos(1000);
        gauge.set(3.5);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter_value("hits"), Some(0));
        assert_eq!(snapshot.histogram("latency").unwrap().count, 0);
        assert_eq!(snapshot.gauge_value("depth"), Some(0.0));
        // Re-enabling resumes recording without losing the registrations.
        registry.set_enabled(true);
        counter.inc();
        assert_eq!(registry.snapshot().counter_value("hits"), Some(1));
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let registry = Registry::new();
        let gauge = registry.gauge("queue_depth");
        gauge.set(4.0);
        gauge.set(2.0);
        assert_eq!(registry.snapshot().gauge_value("queue_depth"), Some(2.0));
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let registry = Registry::new();
        let counter = registry.counter("hits");
        let histogram = registry.histogram("latency");
        counter.add(5);
        histogram.record_nanos(100);
        let before = registry.snapshot();
        counter.add(3);
        for _ in 0..10 {
            histogram.record_nanos(200);
        }
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counter_value("hits"), Some(3));
        let h = delta.histogram("latency").unwrap();
        assert_eq!(h.count, 10);
        // The window only saw the value 200: its quantiles say so (within
        // bucket resolution).
        assert!((h.quantile(0.5) - 200.0).abs() / 200.0 < 0.07);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let registry = Registry::new();
        registry.histogram("latency");
        let snapshot = registry.snapshot();
        let h = snapshot.histogram("latency").unwrap();
        assert_eq!((h.count, h.min_nanos, h.max_nanos), (0, 0, 0));
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    #[should_panic(expected = "registered twice with different kinds")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("metric");
        registry.histogram("metric");
    }
}
