//! Structured spans: RAII guards that record wall-time plus user fields
//! into a bounded in-memory ring buffer, with JSONL and collapsed-stack
//! (flamegraph) exports.
//!
//! Each thread keeps a span stack, so a finished span knows its full
//! ancestry (`engine.solve;backend.solve;dp.kernel`) and its **self time**
//! (wall time minus time attributed to child spans) — exactly what the
//! collapsed-stack export needs for `flamegraph.pl` / `inferno`. Every
//! finished span also feeds the owning registry's `span.<name>` latency
//! histogram, so span durations show up in [`crate::MetricsSnapshot`] with
//! p50/p99 like any other metric.
//!
//! # Overhead contract
//!
//! Opening a span checks [`crate::Registry::enabled`] — one relaxed atomic
//! load — and, when disabled (or without the `obs` feature), returns an
//! inert guard whose drop is a no-op: no allocation, no clock read, no
//! lock. Field construction in the [`crate::span!`] macro is lazy and is
//! skipped entirely on the disabled path. Enabled spans take the ring
//! mutex once, at drop.

use crate::registry::{MetricsSnapshot, Registry};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default ring-buffer capacity of the global recorder (spans, not bytes).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// A typed user field attached to a span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A floating-point field.
    F64(f64),
    /// A boolean field.
    Bool(bool),
    /// A string field.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One finished span, as stored in the ring buffer and emitted to JSONL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (the `span!` literal).
    pub name: String,
    /// Full ancestry at open time, `;`-joined, innermost last
    /// (collapsed-stack convention).
    pub path: String,
    /// Small per-process thread ordinal (not the OS thread id).
    pub thread: u64,
    /// Open time, nanoseconds since the recorder's epoch.
    pub start_nanos: u64,
    /// Wall-clock duration, nanoseconds.
    pub duration_nanos: u64,
    /// Duration minus time spent in child spans on the same thread.
    pub self_nanos: u64,
    /// User fields, in attachment order.
    pub fields: Vec<(String, FieldValue)>,
}

struct Frame {
    name: &'static str,
    /// Nanoseconds attributed to already-finished child spans.
    child_nanos: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

struct RecorderInner {
    ring: VecDeque<SpanRecord>,
    dropped: u64,
}

struct RecorderCore {
    registry: Registry,
    capacity: usize,
    epoch: Instant,
    inner: Mutex<RecorderInner>,
}

/// Collects finished spans into a bounded ring buffer. Cloning is cheap;
/// clones share the buffer. Most code uses [`SpanRecorder::global`]
/// through the [`crate::span!`] macro.
#[derive(Clone)]
pub struct SpanRecorder {
    core: Arc<RecorderCore>,
}

impl SpanRecorder {
    /// A recorder feeding `registry` (spans obey its enabled toggle and
    /// fill its `span.<name>` histograms), keeping at most `capacity`
    /// finished spans — older spans are dropped, counted by
    /// [`SpanRecorder::dropped`].
    pub fn new(registry: Registry, capacity: usize) -> Self {
        SpanRecorder {
            core: Arc::new(RecorderCore {
                registry,
                capacity: capacity.max(1),
                epoch: Instant::now(),
                inner: Mutex::new(RecorderInner {
                    ring: VecDeque::new(),
                    dropped: 0,
                }),
            }),
        }
    }

    /// The process-wide recorder, bound to [`Registry::global`].
    pub fn global() -> &'static SpanRecorder {
        static GLOBAL: OnceLock<SpanRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| SpanRecorder::new(Registry::global().clone(), DEFAULT_RING_CAPACITY))
    }

    /// Whether spans are live (defers to the registry's feature + runtime
    /// toggle).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.core.registry.enabled()
    }

    /// Opens a span. When disabled this returns an inert guard: no clock
    /// read, no allocation, and a no-op drop.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_fields(name, Vec::new)
    }

    /// Opens a span with lazily-built fields — `fields` runs only when the
    /// recorder is enabled.
    pub fn span_fields(
        &self,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(String, FieldValue)>,
    ) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard { live: None };
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().push(Frame {
                name,
                child_nanos: 0,
            });
        });
        SpanGuard {
            live: Some(LiveSpan {
                recorder: self.clone(),
                name,
                start: Instant::now(),
                fields: fields(),
            }),
        }
    }

    fn finish(&self, name: &'static str, start: Instant, fields: Vec<(String, FieldValue)>) {
        let duration = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let (path, self_nanos) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // The guard's own frame is on top unless the guard migrated
            // threads; in that case fall back to flat attribution.
            let child_nanos = match stack.last() {
                Some(frame) if std::ptr::eq(frame.name, name) => {
                    stack.pop().expect("top").child_nanos
                }
                _ => 0,
            };
            if let Some(parent) = stack.last_mut() {
                parent.child_nanos = parent.child_nanos.saturating_add(duration);
            }
            let mut path = String::new();
            for frame in stack.iter() {
                path.push_str(frame.name);
                path.push(';');
            }
            path.push_str(name);
            (path, duration.saturating_sub(child_nanos))
        });
        let record = SpanRecord {
            name: name.to_string(),
            path,
            thread: THREAD_ORDINAL.with(|t| *t),
            start_nanos: start
                .saturating_duration_since(self.core.epoch)
                .as_nanos()
                .min(u64::MAX as u128) as u64,
            duration_nanos: duration,
            self_nanos,
            fields,
        };
        self.core
            .registry
            .histogram(&format!("span.{name}"))
            .record_nanos(duration);
        let mut inner = self.core.inner.lock().expect("span ring lock poisoned");
        if inner.ring.len() == self.core.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(record);
    }

    /// A copy of the buffered spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        let inner = self.core.inner.lock().expect("span ring lock poisoned");
        inner.ring.iter().cloned().collect()
    }

    /// Spans evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.core
            .inner
            .lock()
            .expect("span ring lock poisoned")
            .dropped
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.core
            .inner
            .lock()
            .expect("span ring lock poisoned")
            .ring
            .len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the ring and resets the dropped count.
    pub fn clear(&self) {
        let mut inner = self.core.inner.lock().expect("span ring lock poisoned");
        inner.ring.clear();
        inner.dropped = 0;
    }

    /// Writes the buffered spans as JSON Lines (one `SpanRecord` object
    /// per line, oldest first).
    pub fn write_jsonl(&self, sink: &mut impl Write) -> io::Result<()> {
        for record in self.records() {
            let line = serde_json::to_string(&record).expect("span records serialize");
            writeln!(sink, "{line}")?;
        }
        Ok(())
    }

    /// Writes the JSONL trace to `path`.
    pub fn write_jsonl_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        self.write_jsonl(&mut file)
    }

    /// Collapsed-stack export: one `path self_nanos` line per distinct
    /// span path (self time summed), sorted by path — the input format of
    /// `flamegraph.pl` and `inferno-flamegraph`.
    pub fn collapsed_stacks(&self) -> String {
        let mut by_path: BTreeMap<String, u64> = BTreeMap::new();
        for record in self.records() {
            *by_path.entry(record.path).or_insert(0) += record.self_nanos;
        }
        let mut out = String::new();
        for (path, nanos) in by_path {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&nanos.to_string());
            out.push('\n');
        }
        out
    }

    /// Writes the collapsed-stack export to `path`.
    pub fn write_collapsed_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.collapsed_stacks())
    }

    /// Snapshot of the recorder's registry (convenience for frontends that
    /// hold only a recorder).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.registry.snapshot()
    }
}

struct LiveSpan {
    recorder: SpanRecorder,
    name: &'static str,
    start: Instant,
    fields: Vec<(String, FieldValue)>,
}

/// RAII span guard returned by [`crate::span!`] /
/// [`SpanRecorder::span`]. Records the span when dropped; inert when
/// observability is disabled.
#[must_use = "a span measures until dropped; binding it to _ ends it immediately"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// Attaches a field to a live span (no-op on the disabled path).
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(live) = &mut self.live {
            live.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            live.recorder.finish(live.name, live.start, live.fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(capacity: usize) -> SpanRecorder {
        SpanRecorder::new(Registry::new(), capacity)
    }

    #[test]
    fn spans_nest_and_attribute_self_time() {
        let recorder = recorder(64);
        {
            let mut outer = recorder.span("outer");
            outer.field("items", 3u64);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = recorder.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let records = recorder.records();
        assert_eq!(records.len(), 2);
        let inner = &records[0];
        let outer = &records[1];
        assert_eq!(inner.path, "outer;inner");
        assert_eq!(outer.path, "outer");
        assert_eq!(
            outer.fields,
            vec![("items".to_string(), FieldValue::U64(3))]
        );
        assert!(outer.duration_nanos >= inner.duration_nanos);
        // Outer self time excludes the inner span.
        assert_eq!(
            outer.self_nanos,
            outer.duration_nanos - inner.duration_nanos
        );
        // Span durations also land in the registry histograms.
        let metrics = recorder.metrics();
        assert_eq!(metrics.histogram("span.inner").unwrap().count, 1);
        assert_eq!(metrics.histogram("span.outer").unwrap().count, 1);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let recorder = recorder(4);
        for i in 0..10u64 {
            let mut span = recorder.span("step");
            span.field("i", i);
        }
        assert_eq!(recorder.len(), 4);
        assert_eq!(recorder.dropped(), 6);
        let records = recorder.records();
        // The survivors are the newest four, oldest first.
        let kept: Vec<u64> = records
            .iter()
            .map(|r| match r.fields[0].1 {
                FieldValue::U64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        recorder.clear();
        assert!(recorder.is_empty());
        assert_eq!(recorder.dropped(), 0);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let registry = Registry::new();
        let recorder = SpanRecorder::new(registry.clone(), 16);
        registry.set_enabled(false);
        let mut fields_built = false;
        {
            let _span = recorder.span_fields("quiet", || {
                fields_built = true;
                vec![("k".to_string(), FieldValue::Bool(true))]
            });
        }
        assert!(!fields_built, "fields must not be built when disabled");
        assert!(recorder.is_empty());
        assert!(recorder.metrics().histogram("span.quiet").is_none());
        // The thread-local span stack must stay balanced for later spans.
        registry.set_enabled(true);
        {
            let _span = recorder.span("loud");
        }
        assert_eq!(recorder.records()[0].path, "loud");
    }

    #[test]
    fn jsonl_round_trips() {
        let recorder = recorder(16);
        {
            let mut span = recorder.span("solve");
            span.field("backend", "Het-Dp-Lat");
            span.field("feasible", true);
            span.field("gain", 1.25f64);
        }
        let mut buffer = Vec::new();
        recorder.write_jsonl(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let parsed: SpanRecord = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(parsed, recorder.records()[0]);
    }

    #[test]
    fn collapsed_stacks_aggregate_self_time_per_path() {
        let recorder = recorder(64);
        for _ in 0..3 {
            let _outer = recorder.span("a");
            let _inner = recorder.span("b");
        }
        let collapsed = recorder.collapsed_stacks();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("a;b "));
        // Each line is "path nanos".
        for line in lines {
            let (_, nanos) = line.rsplit_once(' ').unwrap();
            nanos.parse::<u64>().unwrap();
        }
    }
}
