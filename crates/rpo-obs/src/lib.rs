//! `rpo-obs`: the observability substrate of the workspace — structured
//! spans, a unified metrics registry, and latency histograms, with no
//! external dependencies (the vendored `serde` shim is the only one).
//!
//! Every layer of the solver stack reports through this crate: the
//! portfolio engine and batch driver open per-solve and per-backend spans,
//! the caches publish hit/miss/eviction counters, the DP kernels count row
//! sweeps and record build latencies, and the frontends export the result
//! as a [`MetricsSnapshot`] (embedded in `BatchReport` and every
//! `BENCH_*.json`), a JSONL trace, or a collapsed-stack flamegraph input.
//!
//! # The three pieces
//!
//! - [`Registry`] — counters, gauges, and log-bucketed latency histograms
//!   with exact-rank p50/p95/p99/p999 extraction. Counter and histogram
//!   state is sharded per thread and merged on [`Registry::snapshot`], so
//!   the hot path is an unsynchronized increment on the calling thread's
//!   own slot.
//! - [`SpanRecorder`] — RAII [`span!`] guards recording wall time, self
//!   time (minus child spans), and typed user fields into a bounded ring
//!   buffer, exported as JSONL or collapsed stacks. Every finished span
//!   also feeds the `span.<name>` histogram of the registry.
//! - The disabled path — a compile-time `obs` feature (on by default) and
//!   a runtime toggle ([`set_enabled`]).
//!
//! # Overhead contract
//!
//! - **Feature off** (`--no-default-features`): [`enabled`] is
//!   `cfg!(feature = "obs")` = constant `false`; every metric operation and
//!   span guard is dead code the optimizer removes.
//! - **Feature on, runtime-disabled**: every operation is one `Relaxed`
//!   atomic load and a branch — no allocation, no clock read, no lock.
//!   Field construction in [`span!`] is lazy and skipped.
//! - **Enabled, hot path**: a counter increment or histogram record is an
//!   unsynchronized (`Relaxed` load + store) bump of a thread-private
//!   slot — no locked instructions, no cross-thread cache-line traffic.
//!   Locks are confined to handle registration, a thread's first touch of
//!   a metric, snapshotting, and span completion (ring push).
//!
//! # Example
//!
//! ```
//! use rpo_obs::{counter, histogram, span};
//!
//! let _solve = span!("engine.solve", backends = 4usize);
//! counter!("cache.instance.misses").inc();
//! histogram!("oracle.build").record_nanos(12_500);
//! drop(_solve);
//!
//! let snapshot = rpo_obs::global().snapshot();
//! assert!(snapshot.counter_value("cache.instance.misses").unwrap() >= 1);
//! assert!(snapshot.histogram("span.engine.solve").unwrap().count >= 1);
//! ```

mod registry;
mod report;
mod span;

pub use registry::{
    BucketSnapshot, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot,
    MetricsSnapshot, Registry,
};
pub use report::{bench_envelope, write_bench_report};
pub use span::{FieldValue, SpanGuard, SpanRecord, SpanRecorder, DEFAULT_RING_CAPACITY};

/// The process-wide registry (what [`counter!`] / [`histogram!`] /
/// [`span!`] report to).
pub fn global() -> &'static Registry {
    Registry::global()
}

/// The process-wide span recorder feeding [`global`].
pub fn recorder() -> &'static SpanRecorder {
    SpanRecorder::global()
}

/// Flips the global runtime toggle for metrics and spans.
pub fn set_enabled(on: bool) {
    Registry::global().set_enabled(on);
}

/// Whether global instrumentation is live (compile-time `obs` feature AND
/// the runtime toggle).
#[inline]
pub fn enabled() -> bool {
    Registry::global().enabled()
}

/// Opens an RAII span on the global recorder:
/// `span!("dp.kernel")` or `span!("dp.kernel", rows = n, backend = name)`.
///
/// Returns a [`SpanGuard`] that records the span when dropped. Field
/// expressions are evaluated only when observability is enabled; each
/// value goes through [`FieldValue::from`]. Disabled, the whole expansion
/// is a branch on one atomic load.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::recorder().span($name)
    };
    ($name:literal, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::recorder().span_fields($name, || {
            vec![$((
                stringify!($key).to_string(),
                $crate::FieldValue::from($value),
            )),+]
        })
    };
}

/// A `&'static` handle to the global counter named by the literal —
/// resolved once per call site (`OnceLock`), so repeated calls skip the
/// registry name lookup: `counter!("cache.instance.hits").inc()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// A `&'static` handle to the global histogram named by the literal —
/// resolved once per call site: `histogram!("oracle.build").record(dt)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// A `&'static` handle to the global gauge named by the literal:
/// `gauge!("batch.workers").set(n as f64)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_report_to_the_global_registry() {
        counter!("lib.test.counter").add(3);
        histogram!("lib.test.histogram").record_nanos(500);
        gauge!("lib.test.gauge").set(1.5);
        {
            let _span = span!("lib.test.span", case = "macros", n = 2u64);
        }
        let snapshot = crate::global().snapshot();
        assert!(snapshot.counter_value("lib.test.counter").unwrap() >= 3);
        assert!(snapshot.histogram("lib.test.histogram").unwrap().count >= 1);
        assert_eq!(snapshot.gauge_value("lib.test.gauge"), Some(1.5));
        assert!(snapshot.histogram("span.lib.test.span").unwrap().count >= 1);
        let trace = crate::recorder().records();
        assert!(trace.iter().any(|r| r.name == "lib.test.span"));
    }
}
