//! The shared snapshot-to-JSON bench reporter.
//!
//! Every `BENCH_*.json` the workspace emits goes through
//! [`write_bench_report`]: the benchmark's own payload fields stay at the
//! top level of the object (so existing consumers keep working), and the
//! reporter appends a `bench` name and the instrumented
//! [`MetricsSnapshot`] under `metrics`.

use crate::registry::MetricsSnapshot;
use serde::{Serialize, Value};
use std::io;
use std::path::Path;

/// Builds the report envelope: the serialized `payload` object with
/// `bench` and `metrics` entries appended.
///
/// # Panics
///
/// Panics if `payload` does not serialize to a JSON object (bench payloads
/// are structs by construction).
pub fn bench_envelope<P: Serialize>(bench: &str, payload: &P, metrics: &MetricsSnapshot) -> Value {
    let Value::Object(mut entries) = serde_json::to_value(payload) else {
        panic!("bench payload for {bench:?} must serialize to a JSON object");
    };
    entries.push(("bench".to_string(), Value::String(bench.to_string())));
    entries.push(("metrics".to_string(), serde_json::to_value(metrics)));
    Value::Object(entries)
}

/// Serializes `payload` + `metrics` as a pretty-printed report at `path`.
pub fn write_bench_report<P: Serialize>(
    path: impl AsRef<Path>,
    bench: &str,
    payload: &P,
    metrics: &MetricsSnapshot,
) -> io::Result<()> {
    let envelope = bench_envelope(bench, payload, metrics);
    let text = serde_json::to_string_pretty(&envelope).expect("report envelope serializes");
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Payload {
        speedup: f64,
        rows: u64,
    }

    #[test]
    fn envelope_keeps_payload_fields_at_top_level() {
        let registry = Registry::new();
        registry.counter("cache.instance.hits").add(2);
        registry
            .histogram("backend.solve.Het-Dp")
            .record_nanos(1500);
        let payload = Payload {
            speedup: 2.5,
            rows: 64,
        };
        let envelope = bench_envelope("kernel", &payload, &registry.snapshot());
        let entries = envelope.as_object().unwrap();
        let key = |k: &str| entries.iter().find(|(name, _)| name == k).map(|(_, v)| v);
        assert!(key("speedup").is_some());
        assert!(key("rows").is_some());
        assert_eq!(key("bench").unwrap().as_str(), Some("kernel"));
        let metrics: MetricsSnapshot = serde_json::from_value(key("metrics").unwrap()).unwrap();
        assert_eq!(metrics.counter_value("cache.instance.hits"), Some(2));
        assert_eq!(metrics.histogram("backend.solve.Het-Dp").unwrap().count, 1);
    }
}
