//! Energy and power model — the "power consumption" criterion listed as
//! future work in the paper's conclusion.
//!
//! Replication is good for reliability but costs energy: every replica of an
//! interval executes the same work. This module quantifies that cost so that
//! energy/power can be traded against reliability, period and latency:
//!
//! * a processor running at speed `s` draws `P_static + κ · s^α` watts while
//!   computing (the classical CMOS model, `α ≈ 2–3`);
//! * transmitting one unit of data costs `e_comm` joules on a link;
//! * the **energy per data set** of a mapping sums, over every interval
//!   replica, the energy of its computation and of its output communication;
//! * the **average power** of the pipeline in steady state is that energy
//!   divided by the period.

use serde::{Deserialize, Serialize};

use crate::{Mapping, Platform, TaskChain};

/// Power/energy parameters of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static power drawn by a processor while it executes (per time unit).
    pub static_power: f64,
    /// Coefficient `κ` of the dynamic power `κ · s^α`.
    pub dynamic_coefficient: f64,
    /// Exponent `α` of the dynamic power (2–3 for CMOS).
    pub dynamic_exponent: f64,
    /// Energy cost of transmitting one unit of data on a link.
    pub comm_energy_per_unit: f64,
}

impl PowerModel {
    /// A reasonable default CMOS-like model: no static power, cubic dynamic
    /// power with unit coefficient, and negligible communication energy.
    pub fn cubic() -> Self {
        PowerModel {
            static_power: 0.0,
            dynamic_coefficient: 1.0,
            dynamic_exponent: 3.0,
            comm_energy_per_unit: 0.0,
        }
    }

    /// Power drawn by a processor of speed `speed` while computing.
    pub fn compute_power(&self, speed: f64) -> f64 {
        self.static_power + self.dynamic_coefficient * speed.powf(self.dynamic_exponent)
    }

    /// Energy spent executing `work` units of work at speed `speed`
    /// (`power × work / speed`).
    pub fn compute_energy(&self, work: f64, speed: f64) -> f64 {
        self.compute_power(speed) * work / speed
    }

    /// Energy spent transmitting `size` units of data once.
    pub fn comm_energy(&self, size: f64) -> f64 {
        self.comm_energy_per_unit * size
    }
}

/// Energy-oriented evaluation of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyEvaluation {
    /// Total energy consumed to process one data set (all replicas included).
    pub energy_per_dataset: f64,
    /// Average power in steady state: energy per data set divided by the
    /// worst-case period.
    pub average_power: f64,
    /// Number of processors enrolled by the mapping.
    pub processors_enabled: usize,
}

/// Energy consumed by one data set under `mapping`: every replica executes its
/// interval (dynamic + static energy) and forwards the interval output once.
pub fn energy_per_dataset(
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    model: &PowerModel,
) -> f64 {
    mapping
        .intervals()
        .iter()
        .map(|mi| {
            let work = mi.interval.work(chain);
            let output = mi.interval.output_size(chain);
            mi.processors
                .iter()
                .map(|&u| model.compute_energy(work, platform.speed(u)) + model.comm_energy(output))
                .sum::<f64>()
        })
        .sum()
}

/// Full energy evaluation of a mapping (energy per data set, average power at
/// the mapping's worst-case period, processors enabled).
pub fn evaluate_energy(
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    model: &PowerModel,
) -> EnergyEvaluation {
    let energy = energy_per_dataset(chain, platform, mapping, model);
    let period = crate::timing::worst_case_period(chain, platform, mapping);
    EnergyEvaluation {
        energy_per_dataset: energy,
        average_power: energy / period,
        processors_enabled: mapping.processors_used(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interval, MappedInterval, PlatformBuilder};

    fn setup() -> (TaskChain, Platform) {
        let chain = TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .processor(1.0, 1e-6)
            .processor(2.0, 1e-6)
            .processor(1.0, 1e-6)
            .processor(2.0, 1e-6)
            .bandwidth(1.0)
            .link_failure_rate(1e-6)
            .max_replication(2)
            .build()
            .unwrap();
        (chain, platform)
    }

    fn mapping(chain: &TaskChain, platform: &Platform, replicate: bool) -> Mapping {
        let first = if replicate { vec![0, 1] } else { vec![0] };
        let second = if replicate { vec![2, 3] } else { vec![2] };
        Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, first),
                MappedInterval::new(Interval { first: 2, last: 2 }, second),
            ],
            chain,
            platform,
        )
        .unwrap()
    }

    #[test]
    fn power_model_formulas() {
        let model = PowerModel {
            static_power: 2.0,
            dynamic_coefficient: 0.5,
            dynamic_exponent: 3.0,
            comm_energy_per_unit: 0.1,
        };
        assert!((model.compute_power(2.0) - (2.0 + 0.5 * 8.0)).abs() < 1e-12);
        // Energy = power * time = 6 * (12 / 2).
        assert!((model.compute_energy(12.0, 2.0) - 36.0).abs() < 1e-12);
        assert!((model.comm_energy(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(PowerModel::cubic().compute_power(2.0), 8.0);
    }

    #[test]
    fn unreplicated_energy_matches_manual_sum() {
        let (chain, platform) = setup();
        let model = PowerModel {
            static_power: 1.0,
            dynamic_coefficient: 1.0,
            dynamic_exponent: 2.0,
            comm_energy_per_unit: 0.5,
        };
        let m = mapping(&chain, &platform, false);
        // Interval 1 on P0 (speed 1): work 30, power 2, time 30 -> 60; comm 6 * 0.5 = 3.
        // Interval 2 on P2 (speed 1): work 30 -> 60; comm 0.
        let expected = 60.0 + 3.0 + 60.0;
        assert!((energy_per_dataset(&chain, &platform, &m, &model) - expected).abs() < 1e-12);
    }

    #[test]
    fn replication_multiplies_energy_but_not_latency() {
        let (chain, platform) = setup();
        let model = PowerModel::cubic();
        let single = mapping(&chain, &platform, false);
        let duplicated = mapping(&chain, &platform, true);
        let e1 = energy_per_dataset(&chain, &platform, &single, &model);
        let e2 = energy_per_dataset(&chain, &platform, &duplicated, &model);
        assert!(
            e2 > e1 * 1.5,
            "replication should add close to one full extra execution"
        );
        // Faster processors burn more energy per unit of work under a cubic model.
        let faster_only = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![1]),
                MappedInterval::new(Interval { first: 2, last: 2 }, vec![3]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        let e_fast = energy_per_dataset(&chain, &platform, &faster_only, &model);
        assert!(e_fast > e1);
    }

    #[test]
    fn evaluate_energy_reports_power_and_processor_count() {
        let (chain, platform) = setup();
        let model = PowerModel::cubic();
        let m = mapping(&chain, &platform, true);
        let eval = evaluate_energy(&chain, &platform, &m, &model);
        assert_eq!(eval.processors_enabled, 4);
        let period = crate::timing::worst_case_period(&chain, &platform, &m);
        assert!((eval.average_power - eval.energy_per_dataset / period).abs() < 1e-12);
        assert!(eval.energy_per_dataset > 0.0);
    }
}
