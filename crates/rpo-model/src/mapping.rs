//! Replicated interval mappings (Sections 2.5 and 2.6).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::{Interval, IntervalPartition, ModelError, Platform, ProcessorId, Result, TaskChain};

/// One interval of the mapping together with the set of processors that
/// replicate it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedInterval {
    /// The interval of consecutive tasks.
    pub interval: Interval,
    /// Processors executing a replica of the interval (at least one, at most
    /// `K`, all distinct).
    pub processors: Vec<ProcessorId>,
}

impl MappedInterval {
    /// Creates a mapped interval.
    pub fn new(interval: Interval, processors: Vec<ProcessorId>) -> Self {
        MappedInterval {
            interval,
            processors,
        }
    }

    /// Number of replicas of the interval.
    pub fn replication(&self) -> usize {
        self.processors.len()
    }
}

/// A complete interval mapping with replication: a contiguous partition of the
/// chain into intervals, each replicated on a disjoint set of processors.
///
/// A mapping is only ever produced through [`Mapping::new`], which validates
/// every structural constraint of the paper's model:
///
/// * the intervals form a contiguous partition of the chain;
/// * every interval is assigned at least one processor;
/// * no interval uses more than `K` processors (bounded multi-port);
/// * every processor executes at most one interval;
/// * processor indices refer to actual platform processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    intervals: Vec<MappedInterval>,
}

impl Mapping {
    /// Builds a validated mapping of `chain` onto `platform`.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural constraint, if any.
    pub fn new(
        intervals: Vec<MappedInterval>,
        chain: &TaskChain,
        platform: &Platform,
    ) -> Result<Self> {
        // Validate the partition structure first.
        let partition: Vec<Interval> = intervals.iter().map(|mi| mi.interval).collect();
        IntervalPartition::new(partition, chain.len())?;

        let mut used: HashSet<ProcessorId> = HashSet::new();
        for (j, mi) in intervals.iter().enumerate() {
            if mi.processors.is_empty() {
                return Err(ModelError::UnassignedInterval(j));
            }
            if mi.processors.len() > platform.max_replication() {
                return Err(ModelError::ReplicationBoundExceeded {
                    interval: j,
                    replicas: mi.processors.len(),
                    bound: platform.max_replication(),
                });
            }
            for &u in &mi.processors {
                if u >= platform.num_processors() {
                    return Err(ModelError::UnknownProcessor(u));
                }
                if !used.insert(u) {
                    return Err(ModelError::ProcessorReused(u));
                }
            }
        }
        Ok(Mapping { intervals })
    }

    /// Builds a mapping from an interval partition and one processor set per
    /// interval (in the same order).
    ///
    /// # Errors
    ///
    /// Returns an error if the number of processor sets differs from the
    /// number of intervals, or if [`Mapping::new`] rejects the result.
    pub fn from_partition(
        partition: &IntervalPartition,
        processor_sets: Vec<Vec<ProcessorId>>,
        chain: &TaskChain,
        platform: &Platform,
    ) -> Result<Self> {
        if processor_sets.len() != partition.len() {
            return Err(ModelError::IncompletePartition);
        }
        let intervals = partition
            .intervals()
            .iter()
            .zip(processor_sets)
            .map(|(&interval, processors)| MappedInterval {
                interval,
                processors,
            })
            .collect();
        Self::new(intervals, chain, platform)
    }

    /// Number of intervals `m`.
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// The mapped intervals, in pipeline order.
    pub fn intervals(&self) -> &[MappedInterval] {
        &self.intervals
    }

    /// The `j`-th mapped interval.
    pub fn interval(&self, j: usize) -> &MappedInterval {
        &self.intervals[j]
    }

    /// The underlying interval partition (without the processor assignment).
    pub fn partition(&self, chain: &TaskChain) -> IntervalPartition {
        IntervalPartition::new(
            self.intervals.iter().map(|mi| mi.interval).collect(),
            chain.len(),
        )
        .expect("a validated mapping always stores a valid partition")
    }

    /// Total number of processors used by the mapping.
    pub fn processors_used(&self) -> usize {
        self.intervals.iter().map(|mi| mi.processors.len()).sum()
    }

    /// Average number of replicas per interval (the paper's replication level).
    pub fn replication_level(&self) -> f64 {
        self.processors_used() as f64 / self.intervals.len() as f64
    }

    /// Iterator over `(interval index, mapped interval)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &MappedInterval)> {
        self.intervals.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlatformBuilder;

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 3.0), (30.0, 4.0)]).unwrap()
    }

    fn platform(k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(5, 1.0, 1e-6)
            .bandwidth(1.0)
            .link_failure_rate(1e-5)
            .max_replication(k)
            .build()
            .unwrap()
    }

    fn mi(first: usize, last: usize, procs: &[usize]) -> MappedInterval {
        MappedInterval::new(Interval { first, last }, procs.to_vec())
    }

    #[test]
    fn valid_mapping() {
        let c = chain();
        let p = platform(2);
        let m = Mapping::new(vec![mi(0, 1, &[0, 1]), mi(2, 2, &[2])], &c, &p).unwrap();
        assert_eq!(m.num_intervals(), 2);
        assert_eq!(m.processors_used(), 3);
        assert!((m.replication_level() - 1.5).abs() < 1e-12);
        assert_eq!(m.partition(&c).len(), 2);
    }

    #[test]
    fn rejects_unassigned_interval() {
        let c = chain();
        let p = platform(2);
        let err = Mapping::new(vec![mi(0, 1, &[0]), mi(2, 2, &[])], &c, &p).unwrap_err();
        assert_eq!(err, ModelError::UnassignedInterval(1));
    }

    #[test]
    fn rejects_replication_bound_violation() {
        let c = chain();
        let p = platform(2);
        let err = Mapping::new(vec![mi(0, 2, &[0, 1, 2])], &c, &p).unwrap_err();
        assert_eq!(
            err,
            ModelError::ReplicationBoundExceeded {
                interval: 0,
                replicas: 3,
                bound: 2
            }
        );
    }

    #[test]
    fn rejects_processor_reuse() {
        let c = chain();
        let p = platform(2);
        let err = Mapping::new(vec![mi(0, 1, &[0, 1]), mi(2, 2, &[1])], &c, &p).unwrap_err();
        assert_eq!(err, ModelError::ProcessorReused(1));
        let err = Mapping::new(vec![mi(0, 2, &[3, 3])], &c, &p).unwrap_err();
        assert_eq!(err, ModelError::ProcessorReused(3));
    }

    #[test]
    fn rejects_unknown_processor() {
        let c = chain();
        let p = platform(2);
        let err = Mapping::new(vec![mi(0, 2, &[7])], &c, &p).unwrap_err();
        assert_eq!(err, ModelError::UnknownProcessor(7));
    }

    #[test]
    fn rejects_bad_partition() {
        let c = chain();
        let p = platform(2);
        // Gap between intervals.
        let err = Mapping::new(vec![mi(0, 0, &[0]), mi(2, 2, &[1])], &c, &p).unwrap_err();
        assert!(matches!(err, ModelError::NonContiguousPartition { .. }));
        // Does not end at the last task.
        let err = Mapping::new(vec![mi(0, 1, &[0])], &c, &p).unwrap_err();
        assert_eq!(err, ModelError::IncompletePartition);
    }

    #[test]
    fn from_partition_builder() {
        let c = chain();
        let p = platform(3);
        let part = IntervalPartition::from_cut_points(&[0], 3).unwrap();
        let m = Mapping::from_partition(&part, vec![vec![0, 1], vec![2, 3, 4]], &c, &p).unwrap();
        assert_eq!(m.num_intervals(), 2);
        assert_eq!(m.interval(1).replication(), 3);
        // Mismatched number of sets.
        assert!(Mapping::from_partition(&part, vec![vec![0]], &c, &p).is_err());
    }
}
