//! The [`ClassView`]: processor classes as a first-class model layer.
//!
//! Real platforms rarely have `p` *distinct* processors: they have a handful
//! of hardware generations, each contributing many identical `(speed,
//! failure rate)` processors. Every per-processor interval metric is really a
//! per-*class* metric, so solvers that reason at class granularity shrink
//! their search space from `p` processors to `K_c ≪ p` classes — this is
//! what makes an exact heterogeneous dynamic program tractable (see
//! `rpo-algorithms`' `algo_het`).
//!
//! The view owns three things:
//!
//! * the **class table**: the deduplicated [`ProcessorClass`]es of a
//!   platform, with the member processors of each class (ascending ids, so
//!   everything derived from the view is deterministic);
//! * the **per-class factored exponent prefixes** `exp(−ρ_c W_i)` /
//!   `exp(ρ_c W_j)` over the chain's work prefix, which turn per-interval
//!   reliabilities into pure multiplications (guarded by
//!   [`FACTORED_EXPONENT_LIMIT`], with exact fallback);
//! * the [`ClassAssignment`]: a per-interval vector of per-class replica
//!   counts — the class-level description of a mapping — together with its
//!   deterministic lowering to a concrete [`Mapping`].
//!
//! The [`crate::IntervalOracle`] embeds a `ClassView` and exposes it via
//! [`IntervalOracle::class_view`](crate::IntervalOracle::class_view); the
//! per-class *block* tables (which also need the boundary communication
//! data) stay on the oracle
//! ([`class_block_table`](crate::IntervalOracle::class_block_table),
//! [`fill_class_block_row`](crate::IntervalOracle::fill_class_block_row)).

use crate::{
    Interval, IntervalPartition, MappedInterval, Mapping, ModelError, Platform, ProcessorId,
    Result, TaskChain,
};

/// Largest `ρ·W` exponent for which the factored prefix product
/// `exp(−ρW_i)·exp(ρW_j)` is used; beyond it `exp(ρW_j)` could overflow or
/// lose precision, so callers fall back to one exact `exp` per interval.
pub(crate) const FACTORED_EXPONENT_LIMIT: f64 = 40.0;

/// A group of processors with identical `(speed, failure rate)`.
///
/// On a homogeneous platform there is exactly one class; heterogeneous
/// platforms typically have a handful (one per hardware generation), so
/// per-class memoization covers every processor at a fraction of the cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorClass {
    /// Speed `s_u` shared by the members.
    pub speed: f64,
    /// Failure rate `λ_u` shared by the members.
    pub failure_rate: f64,
    /// Number of processors in the class.
    pub members: usize,
}

impl ProcessorClass {
    /// The class's reliability decay rate per unit of work, `ρ_c = λ_c / s_c`.
    #[inline]
    pub fn rho(&self) -> f64 {
        self.failure_rate / self.speed
    }
}

/// The class-level view of one `(chain, platform)` instance: class table,
/// member lists, and per-class factored exponent prefixes.
///
/// Built once (in `O(n·K_c + p)`) by [`ClassView::new`] — the
/// [`crate::IntervalOracle`] does this during its own construction and
/// shares the view with every solver.
#[derive(Debug, Clone)]
pub struct ClassView {
    classes: Vec<ProcessorClass>,
    /// Class index of each processor.
    class_of: Vec<u32>,
    /// Member processors of each class, ascending ids.
    members: Vec<Vec<ProcessorId>>,
    /// Per-class factored log-reliability exponent prefixes:
    /// `exp_minus[c][i] = exp(−ρ_c W_i)` and `exp_plus[c][i] = exp(ρ_c W_i)`
    /// over the work prefix `W`, so the interval reliability
    /// `exp(−ρ_c (W_i − W_j))` is the product `exp_minus[c][i]·exp_plus[c][j]`
    /// — `2(n+1)` exponentials per class instead of one per interval. Empty
    /// for classes whose `ρ_c·W_total` exceeds [`FACTORED_EXPONENT_LIMIT`]
    /// (callers fall back to exact per-interval exponentials there).
    exp_minus: Vec<Vec<f64>>,
    exp_plus: Vec<Vec<f64>>,
    /// Per-class boundary-indexed **compute grid**:
    /// `compute_prefix[c][i] = W_i / s_c` over the work prefix, so the
    /// worst-case computation time of interval `τ_{j+1} … τ_i` on class `c`
    /// replicas is a precomputed-prefix difference (no division). Backs
    /// `IntervalOracle::class_latency_term_factored`, the latency term of
    /// the solvers that re-score exactly afterwards (the Lagrangian penalty
    /// sweep of `algo_het_lat`).
    compute_prefix: Vec<Vec<f64>>,
    /// The chain's work prefix, kept so exact (evaluator-matching) per-class
    /// compute times `(W_i − W_j) / s_c` can be answered too — the prefix
    /// *difference-then-divide* order is what `timing::worst_case_cost`
    /// uses, and `W_i/s − W_j/s` can differ from it by an ulp.
    work_prefix: Vec<f64>,
}

impl ClassView {
    /// Deduplicates the platform's processors into classes and builds the
    /// per-class exponent prefixes over `work_prefix` (the chain's work
    /// prefix-sum array, `n + 1` entries starting at 0).
    pub fn new(platform: &Platform, work_prefix: &[f64]) -> Self {
        let mut classes: Vec<ProcessorClass> = Vec::new();
        let mut class_of = Vec::with_capacity(platform.num_processors());
        let mut members: Vec<Vec<ProcessorId>> = Vec::new();
        for (u, processor) in platform.processors().iter().enumerate() {
            let class = classes.iter().position(|c| {
                c.speed == processor.speed && c.failure_rate == processor.failure_rate
            });
            let class = match class {
                Some(c) => c,
                None => {
                    classes.push(ProcessorClass {
                        speed: processor.speed,
                        failure_rate: processor.failure_rate,
                        members: 0,
                    });
                    members.push(Vec::new());
                    classes.len() - 1
                }
            };
            classes[class].members += 1;
            members[class].push(u);
            class_of.push(class as u32);
        }

        let total_work = *work_prefix.last().expect("non-empty work prefix");
        let (exp_minus, exp_plus): (Vec<Vec<f64>>, Vec<Vec<f64>>) = classes
            .iter()
            .map(|c| {
                let rho = c.rho();
                if rho * total_work <= FACTORED_EXPONENT_LIMIT {
                    (
                        work_prefix.iter().map(|&w| (-rho * w).exp()).collect(),
                        work_prefix.iter().map(|&w| (rho * w).exp()).collect(),
                    )
                } else {
                    (Vec::new(), Vec::new())
                }
            })
            .unzip();

        let compute_prefix = classes
            .iter()
            .map(|c| work_prefix.iter().map(|&w| w / c.speed).collect())
            .collect();

        ClassView {
            classes,
            class_of,
            members,
            exp_minus,
            exp_plus,
            compute_prefix,
            work_prefix: work_prefix.to_vec(),
        }
    }

    /// Number of distinct classes `K_c`.
    #[inline]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// A validated platform is never empty, so neither is its class view.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The deduplicated processor classes.
    #[inline]
    pub fn classes(&self) -> &[ProcessorClass] {
        &self.classes
    }

    /// The `class`-th processor class.
    #[inline]
    pub fn class(&self, class: usize) -> &ProcessorClass {
        &self.classes[class]
    }

    /// Class index of processor `u`.
    #[inline]
    pub fn class_of(&self, u: ProcessorId) -> usize {
        self.class_of[u] as usize
    }

    /// Number of processors `p` covered by the view.
    #[inline]
    pub fn num_processors(&self) -> usize {
        self.class_of.len()
    }

    /// Member processors of `class`, in ascending id order. Deterministic:
    /// everything lowered through the view (see [`ClassAssignment::lower`])
    /// always picks the same concrete processors.
    #[inline]
    pub fn members(&self, class: usize) -> &[ProcessorId] {
        &self.members[class]
    }

    /// Whether the platform has a single processor class (the paper's
    /// definition of homogeneity).
    #[inline]
    pub fn is_homogeneous(&self) -> bool {
        self.classes.len() == 1
    }

    /// Whether the factored exponent prefixes are available for `class`
    /// (`ρ_c · W_total` within the overflow guard). When `false`, factored
    /// queries fall back to one exact `exp` per interval.
    #[inline]
    pub fn factored(&self, class: usize) -> bool {
        !self.exp_minus[class].is_empty()
    }

    /// The `exp(−ρ_c W_i)` prefix of `class` (empty when not
    /// [`factored`](Self::factored)).
    #[inline]
    pub fn exp_minus(&self, class: usize) -> &[f64] {
        &self.exp_minus[class]
    }

    /// The `exp(ρ_c W_i)` prefix of `class` (empty when not
    /// [`factored`](Self::factored)).
    #[inline]
    pub fn exp_plus(&self, class: usize) -> &[f64] {
        &self.exp_plus[class]
    }

    /// The largest class speed (used by solvers to bound the admissible
    /// interval lengths under a period bound).
    #[inline]
    pub fn max_speed(&self) -> f64 {
        self.classes.iter().map(|c| c.speed).fold(0.0, f64::max)
    }

    /// The per-boundary compute grid of `class`: `W_i / s_c` for every work
    /// prefix `W_i` (`n + 1` entries). Interval compute times are prefix
    /// differences of this grid (see
    /// `IntervalOracle::class_latency_term_factored`); the values can differ
    /// from the exact [`Self::class_compute_time`] by an ulp.
    #[inline]
    pub fn compute_prefix(&self, class: usize) -> &[f64] {
        &self.compute_prefix[class]
    }

    /// Worst-case computation time of interval `first ..= last` on replicas
    /// of `class`: `(W_{last+1} − W_first) / s_c`, in exactly the
    /// difference-then-divide operation order of
    /// [`crate::timing::worst_case_cost`] — so a latency accumulated from
    /// these terms is bit-identical to the evaluator's.
    #[inline]
    pub fn class_compute_time(&self, class: usize, first: usize, last: usize) -> f64 {
        debug_assert!(first <= last && last < self.work_prefix.len() - 1);
        (self.work_prefix[last + 1] - self.work_prefix[first]) / self.classes[class].speed
    }

    /// Incrementally rebuilds the view for a changed `platform` (same chain).
    ///
    /// The class *structure* (table, member lists, `class_of`) is re-derived
    /// in `O(p·K_c)` without a single transcendental; the expensive per-class
    /// arrays (`exp_minus`/`exp_plus`/`compute_prefix`) are **moved over**
    /// from every class whose `(speed, failure rate)` pair survives the
    /// change. The move is sound and bit-identical by construction: the
    /// arrays are pure functions of the class parameters and the unchanged
    /// work prefix, and class parameters are unique within a view (the dedup
    /// invariant), so the match is injective. Classes with genuinely new
    /// parameters get freshly computed arrays.
    ///
    /// Returns `true` when the class *table* changed (count, parameters or
    /// order of the classes) — class-indexed warm state downstream must then
    /// be discarded. Member-only changes (a processor leaving a surviving
    /// class) return `false`.
    pub(crate) fn apply_platform_change(&mut self, platform: &Platform) -> bool {
        let mut classes: Vec<ProcessorClass> = Vec::new();
        let mut class_of = Vec::with_capacity(platform.num_processors());
        let mut members: Vec<Vec<ProcessorId>> = Vec::new();
        for (u, processor) in platform.processors().iter().enumerate() {
            let class = classes.iter().position(|c| {
                c.speed == processor.speed && c.failure_rate == processor.failure_rate
            });
            let class = match class {
                Some(c) => c,
                None => {
                    classes.push(ProcessorClass {
                        speed: processor.speed,
                        failure_rate: processor.failure_rate,
                        members: 0,
                    });
                    members.push(Vec::new());
                    classes.len() - 1
                }
            };
            classes[class].members += 1;
            members[class].push(u);
            class_of.push(class as u32);
        }

        let table_changed = classes.len() != self.classes.len()
            || classes
                .iter()
                .zip(&self.classes)
                .any(|(new, old)| new.speed != old.speed || new.failure_rate != old.failure_rate);

        let total_work = *self.work_prefix.last().expect("non-empty work prefix");
        let mut exp_minus = Vec::with_capacity(classes.len());
        let mut exp_plus = Vec::with_capacity(classes.len());
        let mut compute_prefix = Vec::with_capacity(classes.len());
        for c in &classes {
            let surviving = self
                .classes
                .iter()
                .position(|old| old.speed == c.speed && old.failure_rate == c.failure_rate);
            match surviving {
                Some(old) => {
                    exp_minus.push(std::mem::take(&mut self.exp_minus[old]));
                    exp_plus.push(std::mem::take(&mut self.exp_plus[old]));
                    compute_prefix.push(std::mem::take(&mut self.compute_prefix[old]));
                }
                None => {
                    let rho = c.rho();
                    if rho * total_work <= FACTORED_EXPONENT_LIMIT {
                        exp_minus
                            .push(self.work_prefix.iter().map(|&w| (-rho * w).exp()).collect());
                        exp_plus.push(self.work_prefix.iter().map(|&w| (rho * w).exp()).collect());
                    } else {
                        exp_minus.push(Vec::new());
                        exp_plus.push(Vec::new());
                    }
                    compute_prefix.push(self.work_prefix.iter().map(|&w| w / c.speed).collect());
                }
            }
        }

        self.classes = classes;
        self.class_of = class_of;
        self.members = members;
        self.exp_minus = exp_minus;
        self.exp_plus = exp_plus;
        self.compute_prefix = compute_prefix;

        #[cfg(debug_assertions)]
        debug_assert!(
            self.bitwise_eq(&ClassView::new(platform, &self.work_prefix)),
            "incremental class view diverged from a fresh rebuild"
        );
        table_changed
    }

    /// Incrementally rebuilds the per-class prefixes after the chain's work
    /// prefix changed from index `first_changed` on (entries
    /// `0 .. first_changed` must be bit-identical — only the suffix is
    /// recomputed, which keeps the untouched prefix entries bit-identical by
    /// not touching them at all).
    ///
    /// Returns `true` when some class crossed the factored-exponent guard
    /// (`ρ_c·W_total` moved across [`FACTORED_EXPONENT_LIMIT`]): that class's
    /// arrays were rebuilt (or cleared) wholesale, and downstream consumers
    /// of *factored* block reliabilities switch code paths, so bit-exact
    /// prefix reuse in their own state is no longer sound.
    pub(crate) fn apply_work_prefix_change(
        &mut self,
        work_prefix: &[f64],
        first_changed: usize,
    ) -> bool {
        debug_assert_eq!(work_prefix.len(), self.work_prefix.len());
        debug_assert_eq!(
            &work_prefix[..first_changed],
            &self.work_prefix[..first_changed]
        );
        self.work_prefix[first_changed..].copy_from_slice(&work_prefix[first_changed..]);
        let total_work = *self.work_prefix.last().expect("non-empty work prefix");
        let len = self.work_prefix.len();
        let mut factored_changed = false;
        for c in 0..self.classes.len() {
            let class = self.classes[c];
            let rho = class.rho();
            let was_factored = !self.exp_minus[c].is_empty();
            let now_factored = rho * total_work <= FACTORED_EXPONENT_LIMIT;
            if now_factored {
                if was_factored {
                    for i in first_changed..len {
                        let w = self.work_prefix[i];
                        self.exp_minus[c][i] = (-rho * w).exp();
                        self.exp_plus[c][i] = (rho * w).exp();
                    }
                } else {
                    factored_changed = true;
                    self.exp_minus[c] =
                        self.work_prefix.iter().map(|&w| (-rho * w).exp()).collect();
                    self.exp_plus[c] = self.work_prefix.iter().map(|&w| (rho * w).exp()).collect();
                }
            } else {
                if was_factored {
                    factored_changed = true;
                }
                self.exp_minus[c].clear();
                self.exp_plus[c].clear();
            }
            for i in first_changed..len {
                self.compute_prefix[c][i] = self.work_prefix[i] / class.speed;
            }
        }
        factored_changed
    }

    /// Exact structural equality — bitwise on every float — used to assert
    /// that incremental updates reproduce a fresh rebuild.
    #[cfg(debug_assertions)]
    pub(crate) fn bitwise_eq(&self, other: &ClassView) -> bool {
        self.classes == other.classes
            && self.class_of == other.class_of
            && self.members == other.members
            && self.exp_minus == other.exp_minus
            && self.exp_plus == other.exp_plus
            && self.compute_prefix == other.compute_prefix
            && self.work_prefix == other.work_prefix
    }
}

/// A class-level mapping description: for each interval of a partition, how
/// many replicas are drawn from each processor class.
///
/// Class-level solvers (the heterogeneous dynamic program) search over these
/// instead of concrete processor sets — within a class all processors are
/// interchangeable, so nothing is lost — and [`lower`](Self::lower) converts
/// the winner into a concrete [`Mapping`] deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassAssignment {
    /// `counts[j][c]` = number of replicas of interval `j` drawn from
    /// class `c`.
    counts: Vec<Vec<usize>>,
}

impl ClassAssignment {
    /// Wraps per-interval, per-class replica counts (`counts[j][c]`).
    pub fn new(counts: Vec<Vec<usize>>) -> Self {
        ClassAssignment { counts }
    }

    /// The per-interval, per-class replica counts.
    #[inline]
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Number of intervals described.
    #[inline]
    pub fn num_intervals(&self) -> usize {
        self.counts.len()
    }

    /// Total number of replicas of interval `j` (across all classes).
    pub fn replicas(&self, j: usize) -> usize {
        self.counts[j].iter().sum()
    }

    /// Total number of replicas drawn from class `c` across all intervals.
    pub fn class_usage(&self, c: usize) -> usize {
        self.counts.iter().map(|row| row[c]).sum()
    }

    /// Lowers the class-level assignment to a concrete [`Mapping`]
    /// **deterministically**: within each class, member processors are handed
    /// out in ascending id order to intervals in pipeline order, and each
    /// interval's replica set lists its processors in ascending id order.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ClassShapeMismatch`] if the assignment's shape does
    ///   not match the partition and class table;
    /// * [`ModelError::ClassOverSubscribed`] if some class is asked for more
    ///   replicas than it has members;
    /// * any structural error of [`Mapping::new`] (empty interval, `K`
    ///   exceeded, …).
    pub fn lower(
        &self,
        view: &ClassView,
        partition: &IntervalPartition,
        chain: &TaskChain,
        platform: &Platform,
    ) -> Result<Mapping> {
        if self.counts.len() != partition.len()
            || self.counts.iter().any(|row| row.len() != view.len())
        {
            return Err(ModelError::ClassShapeMismatch {
                expected_intervals: partition.len(),
                expected_classes: view.len(),
            });
        }
        for c in 0..view.len() {
            let requested = self.class_usage(c);
            let available = view.members(c).len();
            if requested > available {
                return Err(ModelError::ClassOverSubscribed {
                    class: c,
                    requested,
                    members: available,
                });
            }
        }
        // Per-class cursor into the ascending member list.
        let mut next = vec![0usize; view.len()];
        let mapped = partition
            .intervals()
            .iter()
            .zip(&self.counts)
            .map(|(&interval, row)| {
                let mut processors: Vec<ProcessorId> = Vec::with_capacity(row.iter().sum());
                for (c, &q) in row.iter().enumerate() {
                    let start = next[c];
                    processors.extend_from_slice(&view.members(c)[start..start + q]);
                    next[c] += q;
                }
                processors.sort_unstable();
                MappedInterval::new(interval, processors)
            })
            .collect();
        Mapping::new(mapped, chain, platform)
    }

    /// The class-level description of an existing concrete mapping.
    pub fn from_mapping(view: &ClassView, mapping: &Mapping) -> Self {
        let counts = mapping
            .intervals()
            .iter()
            .map(|mi| {
                let mut row = vec![0usize; view.len()];
                for &u in &mi.processors {
                    row[view.class_of(u)] += 1;
                }
                row
            })
            .collect();
        ClassAssignment { counts }
    }
}

/// A partition paired with its class assignment: `(first, last, counts)` per
/// interval, the usual shape produced by class-level dynamic programs.
pub fn assignment_from_segments(
    segments: &[(usize, usize, Vec<usize>)],
    chain_len: usize,
) -> Result<(IntervalPartition, ClassAssignment)> {
    let intervals: Vec<Interval> = segments
        .iter()
        .map(|&(first, last, _)| Interval { first, last })
        .collect();
    let partition = IntervalPartition::new(intervals, chain_len)?;
    let counts = segments.iter().map(|(_, _, row)| row.clone()).collect();
    Ok((partition, ClassAssignment::new(counts)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntervalOracle, MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0), (40.0, 3.0)]).unwrap()
    }

    fn het_platform() -> Platform {
        PlatformBuilder::new()
            .processor(2.0, 0.01)
            .processor(1.0, 0.02)
            .processor(2.0, 0.01)
            .processor(1.0, 0.02)
            .processor(2.0, 0.01)
            .bandwidth(2.0)
            .link_failure_rate(1e-3)
            .max_replication(3)
            .build()
            .unwrap()
    }

    #[test]
    fn member_lists_are_ascending_and_complete() {
        let c = chain();
        let p = het_platform();
        let view = ClassView::new(&p, c.work_prefix());
        assert_eq!(view.len(), 2);
        assert_eq!(view.members(0), &[0, 2, 4]);
        assert_eq!(view.members(1), &[1, 3]);
        assert_eq!(view.classes()[0].members, 3);
        assert_eq!(view.classes()[1].members, 2);
        assert_eq!(view.num_processors(), 5);
        assert!(!view.is_homogeneous());
        assert_eq!(view.max_speed(), 2.0);
        for u in 0..5 {
            assert!(view.members(view.class_of(u)).contains(&u));
        }
    }

    #[test]
    fn lowering_is_deterministic_and_valid() {
        let c = chain();
        let p = het_platform();
        let view = ClassView::new(&p, c.work_prefix());
        let partition = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        let assignment = ClassAssignment::new(vec![vec![2, 1], vec![1, 1]]);
        let mapping = assignment.lower(&view, &partition, &c, &p).unwrap();
        // Class 0 members {0, 2, 4}: interval 0 takes {0, 2}, interval 1
        // takes {4}. Class 1 members {1, 3}: one each, in order.
        assert_eq!(mapping.interval(0).processors, vec![0, 1, 2]);
        assert_eq!(mapping.interval(1).processors, vec![3, 4]);
        // Round-trip: the lowered mapping describes the same assignment.
        assert_eq!(ClassAssignment::from_mapping(&view, &mapping), assignment);
    }

    #[test]
    fn lowered_mapping_evaluates_like_any_other() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        let partition = IntervalPartition::from_cut_points(&[2], 4).unwrap();
        let assignment = ClassAssignment::new(vec![vec![1, 2], vec![2, 0]]);
        let mapping = assignment
            .lower(oracle.class_view(), &partition, &c, &p)
            .unwrap();
        let fast = oracle.evaluate(&mapping);
        let slow = MappingEvaluation::evaluate(&c, &p, &mapping);
        assert_eq!(fast, slow);
    }

    #[test]
    fn oversubscription_and_shape_errors_are_reported() {
        let c = chain();
        let p = het_platform();
        let view = ClassView::new(&p, c.work_prefix());
        let partition = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        // Class 1 has only two members.
        let over = ClassAssignment::new(vec![vec![0, 2], vec![0, 1]]);
        assert_eq!(
            over.lower(&view, &partition, &c, &p).unwrap_err(),
            ModelError::ClassOverSubscribed {
                class: 1,
                requested: 3,
                members: 2
            }
        );
        let wrong_intervals = ClassAssignment::new(vec![vec![1, 1]]);
        assert!(matches!(
            wrong_intervals
                .lower(&view, &partition, &c, &p)
                .unwrap_err(),
            ModelError::ClassShapeMismatch { .. }
        ));
        let wrong_classes = ClassAssignment::new(vec![vec![1], vec![1]]);
        assert!(matches!(
            wrong_classes.lower(&view, &partition, &c, &p).unwrap_err(),
            ModelError::ClassShapeMismatch { .. }
        ));
        // An interval with zero replicas is caught by Mapping::new.
        let empty = ClassAssignment::new(vec![vec![0, 0], vec![1, 1]]);
        assert_eq!(
            empty.lower(&view, &partition, &c, &p).unwrap_err(),
            ModelError::UnassignedInterval(0)
        );
    }

    #[test]
    fn segments_round_trip_through_the_helper() {
        let c = chain();
        let segments = vec![(0usize, 1usize, vec![1, 0]), (2, 3, vec![0, 2])];
        let (partition, assignment) = assignment_from_segments(&segments, c.len()).unwrap();
        assert_eq!(partition.len(), 2);
        assert_eq!(assignment.counts()[1], vec![0, 2]);
        assert_eq!(assignment.replicas(0), 1);
        assert_eq!(assignment.class_usage(1), 2);
    }
}
