//! Canonical hashing of model objects.
//!
//! Solver caches (e.g. the `rpo-portfolio` instance cache) need a stable,
//! structure-sensitive key for `(TaskChain, Platform, bounds)` triples. The
//! standard-library `Hash` trait is unsuitable: `f64` does not implement it
//! and `DefaultHasher` is not guaranteed stable across releases. This module
//! provides an explicit FNV-1a 64-bit hasher plus a [`Canonical`] trait
//! implemented by every model type that can appear in a cache key. Floats are
//! hashed through their IEEE-754 bit patterns, so keys distinguish `0.0`
//! from `-0.0` and any two NaN payloads — exact-bits equality is precisely
//! the contract a solve cache wants.

use crate::{Platform, Processor, Task, TaskChain};

/// A 64-bit FNV-1a hasher with explicit, width-tagged write methods.
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl CanonicalHasher {
    /// A fresh hasher in the FNV-1a initial state.
    pub fn new() -> Self {
        CanonicalHasher { state: FNV_OFFSET }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= u64::from(byte);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Absorbs a `usize` (widened to 64 bits for portability).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorbs an `f64` through its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Absorbs a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for &byte in bytes {
            self.write_u8(byte);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        CanonicalHasher::new()
    }
}

/// Types with a canonical, structure-sensitive digest.
pub trait Canonical {
    /// Feeds the canonical representation of `self` into `hasher`.
    fn canonical_digest(&self, hasher: &mut CanonicalHasher);

    /// Convenience: the canonical 64-bit hash of `self` alone.
    fn canonical_hash(&self) -> u64 {
        let mut hasher = CanonicalHasher::new();
        self.canonical_digest(&mut hasher);
        hasher.finish()
    }
}

impl Canonical for Task {
    fn canonical_digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_f64(self.work);
        hasher.write_f64(self.output_size);
    }
}

impl Canonical for TaskChain {
    fn canonical_digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_usize(self.len());
        for task in self.tasks() {
            task.canonical_digest(hasher);
        }
    }
}

impl Canonical for Processor {
    fn canonical_digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_f64(self.speed);
        hasher.write_f64(self.failure_rate);
    }
}

impl Canonical for Platform {
    fn canonical_digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_usize(self.num_processors());
        for processor in self.processors() {
            processor.canonical_digest(hasher);
        }
        hasher.write_f64(self.bandwidth());
        hasher.write_f64(self.link_failure_rate());
        hasher.write_usize(self.max_replication());
    }
}

impl Canonical for f64 {
    fn canonical_digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_f64(*self);
    }
}

impl Canonical for usize {
    fn canonical_digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_usize(*self);
    }
}

impl<T: Canonical> Canonical for [T] {
    fn canonical_digest(&self, hasher: &mut CanonicalHasher) {
        hasher.write_usize(self.len());
        for item in self {
            item.canonical_digest(hasher);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 0.0)]).unwrap()
    }

    #[test]
    fn equal_objects_hash_equal() {
        assert_eq!(chain().canonical_hash(), chain().canonical_hash());
        let p = Platform::homogeneous(4, 1.0, 1e-4, 1.0, 1e-5, 2).unwrap();
        let q = Platform::homogeneous(4, 1.0, 1e-4, 1.0, 1e-5, 2).unwrap();
        assert_eq!(p.canonical_hash(), q.canonical_hash());
    }

    #[test]
    fn structural_changes_change_the_hash() {
        let base = chain().canonical_hash();
        let other = TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (26.0, 0.0)]).unwrap();
        assert_ne!(base, other.canonical_hash());

        let p = Platform::homogeneous(4, 1.0, 1e-4, 1.0, 1e-5, 2).unwrap();
        let more = Platform::homogeneous(5, 1.0, 1e-4, 1.0, 1e-5, 2).unwrap();
        let faster = Platform::homogeneous(4, 2.0, 1e-4, 1.0, 1e-5, 2).unwrap();
        assert_ne!(p.canonical_hash(), more.canonical_hash());
        assert_ne!(p.canonical_hash(), faster.canonical_hash());
    }

    #[test]
    fn field_order_matters() {
        // (a, b) and (b, a) must not collide: writes are width-tagged and
        // length-prefixed.
        let ab = TaskChain::from_pairs(&[(1.0, 2.0)])
            .unwrap()
            .canonical_hash();
        let ba = TaskChain::from_pairs(&[(2.0, 1.0)])
            .unwrap()
            .canonical_hash();
        assert_ne!(ab, ba);
    }
}
