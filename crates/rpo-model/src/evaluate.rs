//! One-stop evaluation of a mapping for all five criteria of the paper.

use serde::{Deserialize, Serialize};

use crate::{reliability, timing, Mapping, Platform, TaskChain};

/// The five objective values of a mapping (Section 2.6): reliability,
/// expected and worst-case latency, expected and worst-case period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingEvaluation {
    /// Reliability `r` of the mapping (Eq. 9).
    pub reliability: f64,
    /// Expected input-output latency `EL` (Eq. 5).
    pub expected_latency: f64,
    /// Worst-case input-output latency `WL` (Eq. 7).
    pub worst_case_latency: f64,
    /// Expected period `EP` (Eq. 6).
    pub expected_period: f64,
    /// Worst-case period `WP` (Eq. 8).
    pub worst_case_period: f64,
}

impl MappingEvaluation {
    /// Evaluates `mapping` on `chain` / `platform` for all five criteria.
    pub fn evaluate(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> Self {
        MappingEvaluation {
            reliability: reliability::mapping_reliability(chain, platform, mapping),
            expected_latency: timing::expected_latency(chain, platform, mapping),
            worst_case_latency: timing::worst_case_latency(chain, platform, mapping),
            expected_period: timing::expected_period(chain, platform, mapping),
            worst_case_period: timing::worst_case_period(chain, platform, mapping),
        }
    }

    /// Failure probability `1 − r`.
    pub fn failure_probability(&self) -> f64 {
        1.0 - self.reliability
    }

    /// Checks the mapping against worst-case bounds on period and latency
    /// (the real-time constraints used throughout the experiments).
    pub fn check_bounds(&self, period_bound: f64, latency_bound: f64) -> BoundCheck {
        BoundCheck {
            period_ok: self.worst_case_period <= period_bound,
            latency_ok: self.worst_case_latency <= latency_bound,
        }
    }

    /// Whether the mapping meets both worst-case bounds.
    pub fn meets(&self, period_bound: f64, latency_bound: f64) -> bool {
        self.check_bounds(period_bound, latency_bound).both()
    }
}

/// Result of checking a mapping against period and latency bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundCheck {
    /// Whether the worst-case period is within the bound.
    pub period_ok: bool,
    /// Whether the worst-case latency is within the bound.
    pub latency_ok: bool,
}

impl BoundCheck {
    /// Both bounds hold.
    pub fn both(&self) -> bool {
        self.period_ok && self.latency_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interval, MappedInterval, PlatformBuilder};

    fn setup() -> (TaskChain, Platform, Mapping) {
        let chain = TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .identical_processors(4, 1.0, 1e-4)
            .bandwidth(1.0)
            .link_failure_rate(1e-5)
            .max_replication(2)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                MappedInterval::new(Interval { first: 2, last: 2 }, vec![2, 3]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        (chain, platform, mapping)
    }

    #[test]
    fn evaluation_bundles_all_objectives() {
        let (c, p, m) = setup();
        let e = MappingEvaluation::evaluate(&c, &p, &m);
        assert!((e.reliability - reliability::mapping_reliability(&c, &p, &m)).abs() < 1e-15);
        assert!((e.expected_latency - timing::expected_latency(&c, &p, &m)).abs() < 1e-15);
        assert!((e.worst_case_period - timing::worst_case_period(&c, &p, &m)).abs() < 1e-15);
        assert!((e.failure_probability() - (1.0 - e.reliability)).abs() < 1e-15);
    }

    #[test]
    fn homogeneous_platform_expected_equals_worst_case() {
        let (c, p, m) = setup();
        let e = MappingEvaluation::evaluate(&c, &p, &m);
        assert!((e.expected_latency - e.worst_case_latency).abs() < 1e-12);
        assert!((e.expected_period - e.worst_case_period).abs() < 1e-12);
    }

    #[test]
    fn bound_checks() {
        let (c, p, m) = setup();
        let e = MappingEvaluation::evaluate(&c, &p, &m);
        // WP = max(30, 6) = 30, WL = 30 + 6 + 30 = 66.
        assert!((e.worst_case_period - 30.0).abs() < 1e-12);
        assert!((e.worst_case_latency - 66.0).abs() < 1e-12);
        assert!(e.meets(30.0, 66.0));
        assert!(!e.meets(29.9, 66.0));
        assert!(!e.meets(30.0, 65.9));
        let check = e.check_bounds(100.0, 10.0);
        assert!(check.period_ok && !check.latency_ok && !check.both());
    }
}
