//! Tasks and linear task chains (Section 2.1 of the paper).

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result};

/// A single task `τ_i` of the pipeline, described by the pair `(w_i, o_i)`.
///
/// * `work` is the amount of computation `w_i`; executing the task on a
///   processor of speed `s` takes `w_i / s` time units.
/// * `output_size` is the size `o_i` of the data set produced by the task;
///   transmitting it on a link of bandwidth `b` takes `o_i / b` time units.
///
/// By convention the last task of a chain emits its result directly to the
/// environment, so its output size is treated as zero by the evaluation
/// functions regardless of the stored value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Amount of work `w_i` (strictly positive).
    pub work: f64,
    /// Output data size `o_i` (non-negative).
    pub output_size: f64,
}

impl Task {
    /// Creates a new task from its work and output data size.
    pub fn new(work: f64, output_size: f64) -> Self {
        Task { work, output_size }
    }
}

/// A linear chain of tasks `τ_1 → τ_2 → … → τ_n`.
///
/// Task indices are 0-based throughout the code base (the paper uses 1-based
/// indices). The chain stores a prefix-sum array of the works so that the
/// total work of any interval of consecutive tasks is obtained in `O(1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskChain {
    tasks: Vec<Task>,
    /// `work_prefix[i]` is the total work of tasks `0..i` (so `work_prefix[0] = 0`).
    work_prefix: Vec<f64>,
}

impl TaskChain {
    /// Builds a validated task chain.
    ///
    /// # Errors
    ///
    /// Returns an error if the chain is empty, if any task has non-positive
    /// work, a negative output size, or non-finite values.
    pub fn new(tasks: Vec<Task>) -> Result<Self> {
        if tasks.is_empty() {
            return Err(ModelError::EmptyChain);
        }
        for (i, t) in tasks.iter().enumerate() {
            if !t.work.is_finite() || !t.output_size.is_finite() {
                return Err(ModelError::NotFinite("task work/output size"));
            }
            if t.work <= 0.0 {
                return Err(ModelError::NonPositiveWork(i));
            }
            if t.output_size < 0.0 {
                return Err(ModelError::NegativeOutput(i));
            }
        }
        let mut work_prefix = Vec::with_capacity(tasks.len() + 1);
        work_prefix.push(0.0);
        let mut acc = 0.0;
        for t in &tasks {
            acc += t.work;
            work_prefix.push(acc);
        }
        Ok(TaskChain { tasks, work_prefix })
    }

    /// Builds a chain from `(work, output_size)` pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Result<Self> {
        Self::new(pairs.iter().map(|&(w, o)| Task::new(w, o)).collect())
    }

    /// Number of tasks `n` in the chain.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the chain is empty (never true for a validated chain).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks of the chain, in pipeline order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The `i`-th task (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn task(&self, i: usize) -> Task {
        self.tasks[i]
    }

    /// Work `w_i` of the `i`-th task.
    pub fn work(&self, i: usize) -> f64 {
        self.tasks[i].work
    }

    /// Output data size of the `i`-th task, as the *evaluation* sees it:
    /// the last task outputs directly to the environment, so its output size
    /// is 0 regardless of the stored value (the paper's convention `o_n = 0`).
    pub fn output_size(&self, i: usize) -> f64 {
        if i + 1 == self.tasks.len() {
            0.0
        } else {
            self.tasks[i].output_size
        }
    }

    /// Raw stored output size of task `i`, without the `o_n = 0` convention.
    pub fn raw_output_size(&self, i: usize) -> f64 {
        self.tasks[i].output_size
    }

    /// The prefix-sum array of the works: `work_prefix()[i]` is the total
    /// work of tasks `0..i` (length `n + 1`, first entry 0). Shared with the
    /// interval oracle so interval works never need recomputing.
    pub fn work_prefix(&self) -> &[f64] {
        &self.work_prefix
    }

    /// Total work `Σ w_i` of the whole chain.
    pub fn total_work(&self) -> f64 {
        *self.work_prefix.last().expect("non-empty chain")
    }

    /// Total work of the interval of tasks `first..=last` (0-based, inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `first > last` or `last` is out of bounds.
    pub fn interval_work(&self, first: usize, last: usize) -> f64 {
        assert!(
            first <= last && last < self.tasks.len(),
            "invalid interval [{first}, {last}]"
        );
        self.work_prefix[last + 1] - self.work_prefix[first]
    }

    /// Largest single-task work of the chain (a lower bound on any interval work).
    pub fn max_task_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.work).fold(f64::MIN, f64::max)
    }

    /// Largest output size among tasks `τ_1 .. τ_{n-1}` (the communications that
    /// can appear at an interval boundary). Returns 0 for a single-task chain.
    pub fn max_boundary_output(&self) -> f64 {
        if self.tasks.len() <= 1 {
            return 0.0;
        }
        self.tasks[..self.tasks.len() - 1]
            .iter()
            .map(|t| t.output_size)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 3.0), (30.0, 4.0), (40.0, 5.0)]).unwrap()
    }

    #[test]
    fn rejects_empty_chain() {
        assert_eq!(TaskChain::new(vec![]).unwrap_err(), ModelError::EmptyChain);
    }

    #[test]
    fn rejects_non_positive_work() {
        let err = TaskChain::from_pairs(&[(1.0, 1.0), (0.0, 1.0)]).unwrap_err();
        assert_eq!(err, ModelError::NonPositiveWork(1));
        let err = TaskChain::from_pairs(&[(-3.0, 1.0)]).unwrap_err();
        assert_eq!(err, ModelError::NonPositiveWork(0));
    }

    #[test]
    fn rejects_negative_output() {
        let err = TaskChain::from_pairs(&[(1.0, -1.0)]).unwrap_err();
        assert_eq!(err, ModelError::NegativeOutput(0));
    }

    #[test]
    fn rejects_non_finite_values() {
        let err = TaskChain::from_pairs(&[(f64::NAN, 1.0)]).unwrap_err();
        assert_eq!(err, ModelError::NotFinite("task work/output size"));
        let err = TaskChain::from_pairs(&[(1.0, f64::INFINITY)]).unwrap_err();
        assert_eq!(err, ModelError::NotFinite("task work/output size"));
    }

    #[test]
    fn interval_work_matches_manual_sum() {
        let c = chain();
        assert_eq!(c.interval_work(0, 0), 10.0);
        assert_eq!(c.interval_work(0, 3), 100.0);
        assert_eq!(c.interval_work(1, 2), 50.0);
        assert_eq!(c.total_work(), 100.0);
    }

    #[test]
    fn last_task_output_is_zero_by_convention() {
        let c = chain();
        assert_eq!(c.output_size(3), 0.0);
        assert_eq!(c.raw_output_size(3), 5.0);
        assert_eq!(c.output_size(2), 4.0);
    }

    #[test]
    fn max_helpers() {
        let c = chain();
        assert_eq!(c.max_task_work(), 40.0);
        assert_eq!(c.max_boundary_output(), 4.0);
        let single = TaskChain::from_pairs(&[(5.0, 7.0)]).unwrap();
        assert_eq!(single.max_boundary_output(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn interval_work_panics_on_reversed_bounds() {
        chain().interval_work(2, 1);
    }
}
