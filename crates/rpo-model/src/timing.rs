//! Performance model: expected / worst-case interval costs and the latency
//! and period of a mapping (Section 4, Eqs. 3–8).

use crate::{reliability, Interval, Mapping, Platform, ProcessorId, TaskChain};

/// Expected computation time of interval `interval` on the replica set
/// `processors` (Eq. 3).
///
/// Processors are considered from fastest to slowest; the term for processor
/// `u` covers the case where all strictly faster replicas fail and `u`
/// succeeds. The expectation is conditioned on at least one replica
/// succeeding (hence the normalization by `1 − Π (1 − r_u)`).
///
/// Degenerate case: if every replica fails with probability 1 the
/// normalization is 0; the worst-case time is returned instead so that the
/// value stays finite and conservative.
pub fn expected_cost(
    chain: &TaskChain,
    platform: &Platform,
    interval: Interval,
    processors: &[ProcessorId],
) -> f64 {
    assert!(
        !processors.is_empty(),
        "expected_cost needs at least one replica"
    );
    let work = interval.work(chain);

    // Sort the replica set from fastest to slowest (ties by index for determinism).
    let mut sorted: Vec<ProcessorId> = processors.to_vec();
    sorted.sort_by(|&a, &b| {
        platform
            .speed(b)
            .partial_cmp(&platform.speed(a))
            .expect("finite speeds")
            .then(a.cmp(&b))
    });

    let mut numerator = 0.0;
    let mut all_fail = 1.0;
    for &u in &sorted {
        let r_u = reliability::interval_reliability(chain, platform, u, interval);
        numerator += work / platform.speed(u) * r_u * all_fail;
        all_fail *= 1.0 - r_u;
    }
    let denominator = 1.0 - all_fail;
    if denominator <= 0.0 {
        // All replicas fail almost surely: fall back to the worst-case time.
        worst_case_cost(chain, platform, interval, processors)
    } else {
        numerator / denominator
    }
}

/// Worst-case computation time of interval `interval` on the replica set
/// `processors` (Eq. 4): the execution time on the slowest replica.
pub fn worst_case_cost(
    chain: &TaskChain,
    platform: &Platform,
    interval: Interval,
    processors: &[ProcessorId],
) -> f64 {
    assert!(
        !processors.is_empty(),
        "worst_case_cost needs at least one replica"
    );
    let slowest = processors
        .iter()
        .map(|&u| platform.speed(u))
        .fold(f64::INFINITY, f64::min);
    interval.work(chain) / slowest
}

/// Expected input-output latency of a mapping (Eq. 5): the sum over intervals
/// of the expected computation cost plus the output communication time.
pub fn expected_latency(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> f64 {
    mapping
        .intervals()
        .iter()
        .map(|mi| {
            expected_cost(chain, platform, mi.interval, &mi.processors)
                + platform.comm_time(mi.interval.output_size(chain))
        })
        .sum()
}

/// Worst-case input-output latency of a mapping (Eq. 7).
pub fn worst_case_latency(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> f64 {
    mapping
        .intervals()
        .iter()
        .map(|mi| {
            worst_case_cost(chain, platform, mi.interval, &mi.processors)
                + platform.comm_time(mi.interval.output_size(chain))
        })
        .sum()
}

/// Expected period of a mapping (Eq. 6): the largest of all communication
/// times and expected interval costs.
pub fn expected_period(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> f64 {
    let comm = mapping
        .intervals()
        .iter()
        .map(|mi| platform.comm_time(mi.interval.output_size(chain)))
        .fold(0.0, f64::max);
    let comp = mapping
        .intervals()
        .iter()
        .map(|mi| expected_cost(chain, platform, mi.interval, &mi.processors))
        .fold(0.0, f64::max);
    comm.max(comp)
}

/// Worst-case period of a mapping (Eq. 8).
pub fn worst_case_period(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> f64 {
    let comm = mapping
        .intervals()
        .iter()
        .map(|mi| platform.comm_time(mi.interval.output_size(chain)))
        .fold(0.0, f64::max);
    let comp = mapping
        .intervals()
        .iter()
        .map(|mi| worst_case_cost(chain, platform, mi.interval, &mi.processors))
        .fold(0.0, f64::max);
    comm.max(comp)
}

/// Worst-case period of a *bare interval* `(first..=last)` replicated on a set
/// of processors whose slowest speed is `slowest_speed`, for a chain and
/// platform: `max(o_{f-1}/b, W/s_slow, o_l/b)`.
///
/// This is the feasibility test used by Algorithm 2 and the heuristics: an
/// interval is admissible under a period bound `P` iff this value is ≤ `P`.
/// The incoming communication of the first task of the chain and the outgoing
/// communication of the last task are 0 by convention.
pub fn interval_period_requirement(
    chain: &TaskChain,
    platform: &Platform,
    interval: Interval,
    slowest_speed: f64,
) -> f64 {
    let incoming = if interval.first == 0 {
        0.0
    } else {
        platform.comm_time(chain.output_size(interval.first - 1))
    };
    let outgoing = platform.comm_time(interval.output_size(chain));
    let compute = interval.work(chain) / slowest_speed;
    incoming.max(compute).max(outgoing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MappedInterval, Mapping, PlatformBuilder};

    const EPS: f64 = 1e-12;

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0)]).unwrap()
    }

    /// Two fast processors, two slow ones; noticeable failure rates so that the
    /// expected cost differs from both the best and the worst case.
    fn platform() -> Platform {
        PlatformBuilder::new()
            .processor(2.0, 0.01)
            .processor(2.0, 0.01)
            .processor(1.0, 0.02)
            .processor(1.0, 0.02)
            .bandwidth(2.0)
            .link_failure_rate(1e-3)
            .max_replication(3)
            .build()
            .unwrap()
    }

    fn two_interval_mapping(c: &TaskChain, p: &Platform) -> Mapping {
        Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 2]),
                MappedInterval::new(Interval { first: 2, last: 2 }, vec![1, 3]),
            ],
            c,
            p,
        )
        .unwrap()
    }

    #[test]
    fn worst_case_cost_uses_slowest_processor() {
        let c = chain();
        let p = platform();
        let itv = Interval { first: 0, last: 1 };
        assert!((worst_case_cost(&c, &p, itv, &[0, 2]) - 30.0).abs() < EPS);
        assert!((worst_case_cost(&c, &p, itv, &[0, 1]) - 15.0).abs() < EPS);
    }

    #[test]
    fn expected_cost_single_processor_is_plain_execution_time() {
        let c = chain();
        let p = platform();
        let itv = Interval { first: 0, last: 1 };
        // With a single replica the conditional expectation is W / s.
        assert!((expected_cost(&c, &p, itv, &[0]) - 15.0).abs() < EPS);
        assert!((expected_cost(&c, &p, itv, &[2]) - 30.0).abs() < EPS);
    }

    #[test]
    fn expected_cost_matches_manual_two_replica_formula() {
        let c = chain();
        let p = platform();
        let itv = Interval { first: 0, last: 1 }; // W = 30
        let r_fast = (-0.01f64 * 15.0).exp();
        let r_slow = (-0.02f64 * 30.0).exp();
        let expected = 30.0 * (r_fast / 2.0 + r_slow * (1.0 - r_fast) / 1.0)
            / (1.0 - (1.0 - r_fast) * (1.0 - r_slow));
        assert!((expected_cost(&c, &p, itv, &[0, 2]) - expected).abs() < EPS);
        // Order of the replica list must not matter.
        assert!((expected_cost(&c, &p, itv, &[2, 0]) - expected).abs() < EPS);
    }

    #[test]
    fn expected_cost_between_best_and_worst_case() {
        let c = chain();
        let p = platform();
        let itv = Interval { first: 0, last: 2 };
        let ec = expected_cost(&c, &p, itv, &[0, 2, 3]);
        let best = itv.work(&c) / 2.0;
        let worst = worst_case_cost(&c, &p, itv, &[0, 2, 3]);
        assert!(ec >= best - EPS);
        assert!(ec <= worst + EPS);
    }

    #[test]
    fn homogeneous_replicas_have_equal_expected_and_worst_case() {
        let c = chain();
        let p = PlatformBuilder::new()
            .identical_processors(3, 2.0, 0.01)
            .max_replication(3)
            .build()
            .unwrap();
        let itv = Interval { first: 0, last: 2 };
        let ec = expected_cost(&c, &p, itv, &[0, 1, 2]);
        let wc = worst_case_cost(&c, &p, itv, &[0, 1, 2]);
        assert!((ec - wc).abs() < EPS);
        assert!((ec - 30.0).abs() < EPS);
    }

    #[test]
    fn latency_sums_costs_and_communications() {
        let c = chain();
        let p = platform();
        let m = two_interval_mapping(&c, &p);
        let ec1 = expected_cost(&c, &p, Interval { first: 0, last: 1 }, &[0, 2]);
        let ec2 = expected_cost(&c, &p, Interval { first: 2, last: 2 }, &[1, 3]);
        // Interval 1 outputs o_2 = 6 over bandwidth 2; interval 2 outputs to the environment.
        let expected = ec1 + 6.0 / 2.0 + ec2;
        assert!((expected_latency(&c, &p, &m) - expected).abs() < EPS);

        let wc1 = worst_case_cost(&c, &p, Interval { first: 0, last: 1 }, &[0, 2]);
        let wc2 = worst_case_cost(&c, &p, Interval { first: 2, last: 2 }, &[1, 3]);
        assert!((worst_case_latency(&c, &p, &m) - (wc1 + 3.0 + wc2)).abs() < EPS);
        assert!(worst_case_latency(&c, &p, &m) >= expected_latency(&c, &p, &m) - EPS);
    }

    #[test]
    fn period_is_max_of_stage_costs_and_communications() {
        let c = chain();
        let p = platform();
        let m = two_interval_mapping(&c, &p);
        let wc1 = worst_case_cost(&c, &p, Interval { first: 0, last: 1 }, &[0, 2]);
        let wc2 = worst_case_cost(&c, &p, Interval { first: 2, last: 2 }, &[1, 3]);
        let expected_wp = wc1.max(wc2).max(3.0);
        assert!((worst_case_period(&c, &p, &m) - expected_wp).abs() < EPS);
        assert!(worst_case_period(&c, &p, &m) >= expected_period(&c, &p, &m) - EPS);
        // The period never exceeds the latency.
        assert!(worst_case_period(&c, &p, &m) <= worst_case_latency(&c, &p, &m) + EPS);
    }

    #[test]
    fn interval_period_requirement_accounts_for_both_communications() {
        let c = chain();
        let p = platform();
        // Middle interval: incoming o_0 = 2, outgoing o_1 = 6, W = 20, bandwidth 2.
        let itv = Interval { first: 1, last: 1 };
        let req = interval_period_requirement(&c, &p, itv, 1.0);
        assert!((req - 20.0).abs() < EPS);
        let req_fast = interval_period_requirement(&c, &p, itv, 10.0);
        assert!((req_fast - 3.0).abs() < EPS); // outgoing communication dominates
                                               // First interval has no incoming communication.
        let first = Interval { first: 0, last: 0 };
        assert!((interval_period_requirement(&c, &p, first, 1.0) - 10.0).abs() < EPS);
        // Last interval has no outgoing communication.
        let last = Interval { first: 2, last: 2 };
        assert!((interval_period_requirement(&c, &p, last, 10.0) - 3.0).abs() < EPS);
    }
}
