//! Error type shared by all model constructors and validators.

use std::fmt;

/// Errors raised when building or validating chains, platforms and mappings.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A task chain must contain at least one task.
    EmptyChain,
    /// Task work must be strictly positive (index of the offending task).
    NonPositiveWork(usize),
    /// Output data sizes must be non-negative (index of the offending task).
    NegativeOutput(usize),
    /// A platform must contain at least one processor.
    EmptyPlatform,
    /// Processor speeds must be strictly positive (index of the offending processor).
    NonPositiveSpeed(usize),
    /// Failure rates must be non-negative (description of the offending component).
    NegativeFailureRate(String),
    /// Link bandwidth must be strictly positive.
    NonPositiveBandwidth,
    /// The replication bound `K` must be at least one.
    ZeroReplicationBound,
    /// An interval has `first > last` or exceeds the chain length.
    InvalidInterval {
        /// First task index (0-based, inclusive) of the offending interval.
        first: usize,
        /// Last task index (0-based, inclusive) of the offending interval.
        last: usize,
        /// Number of tasks in the chain being partitioned.
        chain_len: usize,
    },
    /// Intervals do not form a contiguous partition of the chain.
    NonContiguousPartition {
        /// Index of the interval at which contiguity is broken.
        at_interval: usize,
    },
    /// The partition does not start at the first task or end at the last task.
    IncompletePartition,
    /// An interval is replicated on no processor at all.
    UnassignedInterval(usize),
    /// An interval is replicated on more processors than the platform bound `K`.
    ReplicationBoundExceeded {
        /// Index of the offending interval.
        interval: usize,
        /// Number of replicas requested.
        replicas: usize,
        /// Platform replication bound `K`.
        bound: usize,
    },
    /// A processor is assigned to more than one interval.
    ProcessorReused(usize),
    /// A processor index is outside the platform.
    UnknownProcessor(usize),
    /// A numeric argument was expected to be finite.
    NotFinite(&'static str),
    /// A class assignment requests more replicas from a class than it has
    /// member processors.
    ClassOverSubscribed {
        /// Index of the over-subscribed class.
        class: usize,
        /// Total replicas requested from the class.
        requested: usize,
        /// Member processors the class actually has.
        members: usize,
    },
    /// A class assignment's shape does not match the partition and class
    /// table it is lowered against.
    ClassShapeMismatch {
        /// Number of intervals of the partition.
        expected_intervals: usize,
        /// Number of classes of the class view.
        expected_classes: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyChain => write!(f, "task chain is empty"),
            ModelError::NonPositiveWork(i) => {
                write!(f, "task {i} has non-positive work")
            }
            ModelError::NegativeOutput(i) => {
                write!(f, "task {i} has a negative output data size")
            }
            ModelError::EmptyPlatform => write!(f, "platform has no processor"),
            ModelError::NonPositiveSpeed(u) => {
                write!(f, "processor {u} has non-positive speed")
            }
            ModelError::NegativeFailureRate(what) => {
                write!(f, "{what} has a negative failure rate")
            }
            ModelError::NonPositiveBandwidth => write!(f, "link bandwidth must be positive"),
            ModelError::ZeroReplicationBound => {
                write!(f, "replication bound K must be at least 1")
            }
            ModelError::InvalidInterval {
                first,
                last,
                chain_len,
            } => write!(
                f,
                "interval [{first}, {last}] is invalid for a chain of {chain_len} tasks"
            ),
            ModelError::NonContiguousPartition { at_interval } => write!(
                f,
                "interval partition is not contiguous at interval {at_interval}"
            ),
            ModelError::IncompletePartition => {
                write!(f, "interval partition does not cover the whole chain")
            }
            ModelError::UnassignedInterval(j) => {
                write!(f, "interval {j} is mapped on no processor")
            }
            ModelError::ReplicationBoundExceeded {
                interval,
                replicas,
                bound,
            } => write!(
                f,
                "interval {interval} uses {replicas} replicas, exceeding the bound K = {bound}"
            ),
            ModelError::ProcessorReused(u) => {
                write!(f, "processor {u} is assigned to more than one interval")
            }
            ModelError::UnknownProcessor(u) => {
                write!(f, "processor index {u} is outside the platform")
            }
            ModelError::NotFinite(what) => write!(f, "{what} must be a finite number"),
            ModelError::ClassOverSubscribed {
                class,
                requested,
                members,
            } => write!(
                f,
                "class {class} is asked for {requested} replicas but has only {members} members"
            ),
            ModelError::ClassShapeMismatch {
                expected_intervals,
                expected_classes,
            } => write!(
                f,
                "class assignment shape does not match {expected_intervals} intervals × \
                 {expected_classes} classes"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::ReplicationBoundExceeded {
            interval: 2,
            replicas: 5,
            bound: 3,
        };
        let s = e.to_string();
        assert!(s.contains("interval 2"));
        assert!(s.contains("K = 3"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ModelError::EmptyChain);
    }
}
