//! Reliability model (Section 2.4) and the closed-form reliability of a
//! replicated interval mapping (Section 4, Eq. 9).
//!
//! All hardware components are fail-silent with transient failures following
//! a constant-rate Poisson process, so the reliability of an operation of
//! duration `d` on a component of failure rate `λ` is `e^{-λ d}`. Failure
//! occurrences are statistically independent. Routing operations inserted
//! between intervals keep the reliability block diagram serial-parallel,
//! which is what makes Eq. (9) a product over intervals.

use crate::{Interval, Mapping, Platform, ProcessorId, TaskChain};

/// Reliability of a component of failure rate `lambda` during `duration`
/// time units: `e^{-λ d}` (Section 2.4).
///
/// A zero failure rate or a zero duration gives a perfectly reliable
/// operation (reliability 1).
pub fn component_reliability(lambda: f64, duration: f64) -> f64 {
    (-lambda * duration).exp()
}

/// Reliability of task `i` executed on processor `u` (Eq. 1):
/// `r_{u,i} = e^{-λ_u w_i / s_u}`.
pub fn task_reliability(chain: &TaskChain, platform: &Platform, u: ProcessorId, i: usize) -> f64 {
    component_reliability(platform.failure_rate(u), chain.work(i) / platform.speed(u))
}

/// Reliability of the interval `interval` executed on processor `u` (Eq. 2):
/// `r_{u,I} = e^{-λ_u W / s_u} = Π_{τ_i ∈ I} r_{u,i}`.
pub fn interval_reliability(
    chain: &TaskChain,
    platform: &Platform,
    u: ProcessorId,
    interval: Interval,
) -> f64 {
    component_reliability(
        platform.failure_rate(u),
        interval.work(chain) / platform.speed(u),
    )
}

/// Reliability of the communication of a data set of size `output_size` on one
/// link: `r_comm = e^{-λ_ℓ o / b}`.
pub fn communication_reliability(platform: &Platform, output_size: f64) -> f64 {
    component_reliability(
        platform.link_failure_rate(),
        output_size / platform.bandwidth(),
    )
}

/// Reliability of the `i`-th communication of the chain (the output of task
/// `τ_i`), `r_comm,i = e^{-λ_ℓ o_i / b}`; the output of the last task is sent
/// to the environment and has reliability 1.
pub fn chain_communication_reliability(chain: &TaskChain, platform: &Platform, i: usize) -> f64 {
    communication_reliability(platform, chain.output_size(i))
}

/// Reliability of one replica block of an interval: the incoming
/// communication (from the routing operation that collected the previous
/// interval's output), the computation itself, and the outgoing communication
/// (towards the next routing operation): `r_comm,in × r_{u,I} × r_comm,out`.
///
/// `input_size` is the output data size of the *previous* interval (0 for the
/// first interval) and `output_size` the output data size of this interval
/// (0 for the last interval).
pub fn replica_block_reliability(
    chain: &TaskChain,
    platform: &Platform,
    u: ProcessorId,
    interval: Interval,
    input_size: f64,
    output_size: f64,
) -> f64 {
    communication_reliability(platform, input_size)
        * interval_reliability(chain, platform, u, interval)
        * communication_reliability(platform, output_size)
}

/// Reliability of one replicated interval: `1 − Π_u (1 − block_u)` where the
/// product ranges over the replica processors (Eq. 9, inner term).
pub fn replicated_interval_reliability(
    chain: &TaskChain,
    platform: &Platform,
    processors: &[ProcessorId],
    interval: Interval,
    input_size: f64,
    output_size: f64,
) -> f64 {
    let all_fail: f64 = processors
        .iter()
        .map(|&u| {
            1.0 - replica_block_reliability(chain, platform, u, interval, input_size, output_size)
        })
        .product();
    1.0 - all_fail
}

/// Reliability of a complete mapping (Eq. 9), under the routing-operation
/// model that keeps the reliability block diagram serial-parallel:
///
/// `r = Π_j ( 1 − Π_{P_u ∈ P_j} (1 − r_comm,j-1 · r_{u,I_j} · r_comm,j) )`
///
/// Routing operations themselves take zero time and have reliability 1, so
/// they do not appear in the formula. The first interval has no incoming
/// communication and the last interval no outgoing one.
pub fn mapping_reliability(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> f64 {
    let mut r = 1.0;
    let mut input_size = 0.0;
    for mi in mapping.intervals() {
        let output_size = mi.interval.output_size(chain);
        r *= replicated_interval_reliability(
            chain,
            platform,
            &mi.processors,
            mi.interval,
            input_size,
            output_size,
        );
        input_size = output_size;
    }
    r
}

/// Failure probability of a mapping: `1 − r`.
pub fn mapping_failure_probability(
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
) -> f64 {
    1.0 - mapping_reliability(chain, platform, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MappedInterval, Mapping, PlatformBuilder};

    const EPS: f64 = 1e-12;

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 3.0), (30.0, 4.0)]).unwrap()
    }

    fn platform() -> Platform {
        PlatformBuilder::new()
            .identical_processors(4, 2.0, 1e-4)
            .bandwidth(1.0)
            .link_failure_rate(1e-3)
            .max_replication(2)
            .build()
            .unwrap()
    }

    #[test]
    fn component_reliability_basics() {
        assert_eq!(component_reliability(0.0, 100.0), 1.0);
        assert_eq!(component_reliability(1e-3, 0.0), 1.0);
        assert!((component_reliability(1e-3, 10.0) - (-0.01f64).exp()).abs() < EPS);
    }

    #[test]
    fn task_and_interval_reliability_consistency() {
        let c = chain();
        let p = platform();
        // Interval reliability equals the product of its task reliabilities (Eq. 2).
        let itv = Interval { first: 0, last: 2 };
        let prod: f64 = (0..3).map(|i| task_reliability(&c, &p, 0, i)).product();
        let whole = interval_reliability(&c, &p, 0, itv);
        assert!((prod - whole).abs() < EPS);
        // Explicit value: λ W / s = 1e-4 * 60 / 2.
        assert!((whole - (-1e-4f64 * 30.0).exp()).abs() < EPS);
    }

    #[test]
    fn communication_reliability_last_task_is_one() {
        let c = chain();
        let p = platform();
        assert_eq!(chain_communication_reliability(&c, &p, 2), 1.0);
        assert!((chain_communication_reliability(&c, &p, 0) - (-1e-3f64 * 2.0).exp()).abs() < EPS);
    }

    #[test]
    fn replication_improves_reliability() {
        let c = chain();
        let p = platform();
        let itv = Interval { first: 0, last: 2 };
        let one = replicated_interval_reliability(&c, &p, &[0], itv, 0.0, 0.0);
        let two = replicated_interval_reliability(&c, &p, &[0, 1], itv, 0.0, 0.0);
        assert!(two > one);
        assert!(two <= 1.0);
        // 1 - (1-r)^2 for identical processors.
        let r = replica_block_reliability(&c, &p, 0, itv, 0.0, 0.0);
        assert!((two - (1.0 - (1.0 - r).powi(2))).abs() < EPS);
    }

    #[test]
    fn mapping_reliability_matches_manual_computation() {
        let c = chain();
        let p = platform();
        let m = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                MappedInterval::new(Interval { first: 2, last: 2 }, vec![2]),
            ],
            &c,
            &p,
        )
        .unwrap();

        // Interval 1: W = 30, o_out = 3, no input comm.
        let r_block1 = (-1e-4f64 * 15.0).exp() * (-1e-3f64 * 3.0).exp();
        let r_itv1 = 1.0 - (1.0 - r_block1) * (1.0 - r_block1);
        // Interval 2: W = 30, input o = 3, output to environment.
        let r_block2 = (-1e-3f64 * 3.0).exp() * (-1e-4f64 * 15.0).exp();
        let r_itv2 = r_block2;
        let expected = r_itv1 * r_itv2;

        assert!((mapping_reliability(&c, &p, &m) - expected).abs() < EPS);
        assert!((mapping_failure_probability(&c, &p, &m) - (1.0 - expected)).abs() < EPS);
    }

    #[test]
    fn perfect_platform_gives_reliability_one() {
        let c = chain();
        let p = PlatformBuilder::new()
            .identical_processors(2, 1.0, 0.0)
            .bandwidth(1.0)
            .link_failure_rate(0.0)
            .max_replication(1)
            .build()
            .unwrap();
        let m = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0]),
                MappedInterval::new(Interval { first: 2, last: 2 }, vec![1]),
            ],
            &c,
            &p,
        )
        .unwrap();
        assert_eq!(mapping_reliability(&c, &p, &m), 1.0);
    }

    #[test]
    fn reliability_is_within_unit_interval() {
        let c = chain();
        let p = platform();
        let m = Mapping::new(
            vec![MappedInterval::new(
                Interval { first: 0, last: 2 },
                vec![0, 3],
            )],
            &c,
            &p,
        )
        .unwrap();
        let r = mapping_reliability(&c, &p, &m);
        assert!(r > 0.0 && r < 1.0);
    }
}
