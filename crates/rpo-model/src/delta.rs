//! Platform and workload **delta events** for incremental re-solve.
//!
//! Production platforms churn: a processor dies (fail-stop), a processor is
//! throttled, a failure-rate estimate is revised after field data comes in, a
//! task's work estimate changes. Rebuilding every model artifact from scratch
//! on each event is wasteful — the [`crate::IntervalOracle`] costs `O(n·K_c)`
//! transcendentals to build, and the solver state downstream is far larger.
//! A [`PlatformDelta`] names the change precisely enough that
//! [`IntervalOracle::apply_delta`](crate::IntervalOracle::apply_delta) can
//! rebuild **only the affected rows** of the oracle and keep every unaffected
//! array bit-identical (asserted against a fresh rebuild in debug builds).
//!
//! The [`AppliedDelta`] returned by `apply_delta` also tells solvers how much
//! of *their* warm state survives: the first affected task index (DP rows
//! left of it keep their values), whether the class table changed, and
//! whether some class crossed the factored-exponent guard (after which block
//! reliabilities come from a different, ulp-distinct code path).

use serde::{Deserialize, Serialize};

use crate::{ModelError, Platform, ProcessorId, Result, TaskChain};

/// One atomic change to a `(chain, platform)` instance.
///
/// Processor-indexed variants refer to **current** platform indices; after a
/// [`ProcessorFailed`](PlatformDelta::ProcessorFailed) event the ids above
/// the failed processor shift down by one (see
/// [`remap_processor`](PlatformDelta::remap_processor)), so a sequence of
/// deltas must be interpreted left to right.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlatformDelta {
    /// Processor `u` failed (fail-stop, the paper's failure model) and
    /// leaves the platform. Ids above `u` shift down by one.
    ProcessorFailed(ProcessorId),
    /// Processor `u` is throttled: its speed is multiplied by `factor`
    /// (which must yield a positive finite speed).
    SpeedDegraded {
        /// The affected processor.
        processor: ProcessorId,
        /// Multiplier applied to the speed (`0 < factor`, finite).
        factor: f64,
    },
    /// Processor `u`'s failure-rate estimate is revised.
    RateRevised {
        /// The affected processor.
        processor: ProcessorId,
        /// The new failure rate `λ_u` (non-negative).
        rate: f64,
    },
    /// Task `t`'s work estimate is revised.
    TaskWorkRevised {
        /// The affected task (0-based).
        task: usize,
        /// The new amount of work `w_t` (strictly positive).
        work: f64,
    },
}

impl PlatformDelta {
    /// Applies the delta to a `(chain, platform)` pair, returning the
    /// post-delta pair. The inputs are not modified.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownProcessor`] if a processor-indexed delta names
    ///   an index outside the platform;
    /// * any validation error of the post-delta chain or platform — notably
    ///   [`ModelError::EmptyPlatform`] when the last processor fails,
    ///   [`ModelError::NonPositiveSpeed`] / [`ModelError::NotFinite`] for a
    ///   degenerate speed factor, [`ModelError::NegativeFailureRate`] for a
    ///   negative revised rate, and [`ModelError::NonPositiveWork`] for a
    ///   non-positive revised work.
    ///
    /// # Panics
    ///
    /// Panics if a [`TaskWorkRevised`](PlatformDelta::TaskWorkRevised) names
    /// a task outside the chain (the chain length never changes, so this is
    /// always a caller bug rather than a stale-trace race).
    pub fn apply(&self, chain: &TaskChain, platform: &Platform) -> Result<(TaskChain, Platform)> {
        match *self {
            PlatformDelta::ProcessorFailed(u) => {
                let mut processors = platform.processors().to_vec();
                if u >= processors.len() {
                    return Err(ModelError::UnknownProcessor(u));
                }
                processors.remove(u);
                let platform = Platform::new(
                    processors,
                    platform.bandwidth(),
                    platform.link_failure_rate(),
                    platform.max_replication(),
                )?;
                Ok((chain.clone(), platform))
            }
            PlatformDelta::SpeedDegraded { processor, factor } => {
                let mut processors = platform.processors().to_vec();
                let target = processors
                    .get_mut(processor)
                    .ok_or(ModelError::UnknownProcessor(processor))?;
                target.speed *= factor;
                let platform = Platform::new(
                    processors,
                    platform.bandwidth(),
                    platform.link_failure_rate(),
                    platform.max_replication(),
                )?;
                Ok((chain.clone(), platform))
            }
            PlatformDelta::RateRevised { processor, rate } => {
                let mut processors = platform.processors().to_vec();
                let target = processors
                    .get_mut(processor)
                    .ok_or(ModelError::UnknownProcessor(processor))?;
                target.failure_rate = rate;
                let platform = Platform::new(
                    processors,
                    platform.bandwidth(),
                    platform.link_failure_rate(),
                    platform.max_replication(),
                )?;
                Ok((chain.clone(), platform))
            }
            PlatformDelta::TaskWorkRevised { task, work } => {
                let mut tasks = chain.tasks().to_vec();
                assert!(task < tasks.len(), "task index {task} outside the chain");
                tasks[task].work = work;
                Ok((TaskChain::new(tasks)?, platform.clone()))
            }
        }
    }

    /// Maps a **pre-delta** processor id to its **post-delta** id: `None` if
    /// the processor failed, the id shifted down by one if a lower-indexed
    /// processor failed, the id itself otherwise.
    pub fn remap_processor(&self, u: ProcessorId) -> Option<ProcessorId> {
        match *self {
            PlatformDelta::ProcessorFailed(failed) => match u.cmp(&failed) {
                std::cmp::Ordering::Less => Some(u),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(u - 1),
            },
            _ => Some(u),
        }
    }

    /// The processor that failed, when this is a fail-stop event.
    pub fn failed_processor(&self) -> Option<ProcessorId> {
        match *self {
            PlatformDelta::ProcessorFailed(u) => Some(u),
            _ => None,
        }
    }

    /// Whether the delta changes the platform (as opposed to the chain).
    pub fn affects_platform(&self) -> bool {
        !matches!(self, PlatformDelta::TaskWorkRevised { .. })
    }
}

/// The outcome of [`IntervalOracle::apply_delta`](crate::IntervalOracle::apply_delta):
/// the post-delta chain and platform plus a summary of what the incremental
/// update actually had to touch. Solvers read the summary to decide how much
/// of their own warm state (DP rows, class-indexed tables) survives.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The post-delta task chain.
    pub chain: TaskChain,
    /// The post-delta platform.
    pub platform: Platform,
    /// First (0-based) task index whose interval metrics may have changed;
    /// `chain.len()` when no interval metric changed at all. Every interval
    /// made only of tasks strictly before this index — and therefore every
    /// row `i ≤ first_affected_task` of a boundary-indexed dynamic program —
    /// is bit-identical to its pre-delta value.
    pub first_affected_task: usize,
    /// Whether the class *table* changed (count, parameters or order of the
    /// deduplicated classes). Class-indexed warm state must be discarded;
    /// member-only changes (a processor leaving a surviving class) keep it.
    pub classes_changed: bool,
    /// Whether some class crossed the factored-exponent guard (`ρ·W ≤ 40`,
    /// see [`crate::class_view`]): block reliabilities are then produced by
    /// a different, ulp-distinct code path, so prefix reuse inside a
    /// bit-exact dynamic program is no longer sound.
    pub factored_changed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntervalOracle, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0), (40.0, 3.0)]).unwrap()
    }

    fn platform() -> Platform {
        PlatformBuilder::new()
            .processor(2.0, 0.01)
            .processor(1.0, 0.02)
            .processor(2.0, 0.01)
            .processor(1.0, 0.02)
            .bandwidth(2.0)
            .link_failure_rate(1e-3)
            .max_replication(3)
            .build()
            .unwrap()
    }

    #[test]
    fn processor_failure_removes_and_shifts() {
        let (c, p) = (chain(), platform());
        let delta = PlatformDelta::ProcessorFailed(1);
        let (c2, p2) = delta.apply(&c, &p).unwrap();
        assert_eq!(c2, c);
        assert_eq!(p2.num_processors(), 3);
        assert_eq!(p2.speed(1), 2.0); // old processor 2 shifted down
        assert_eq!(delta.remap_processor(0), Some(0));
        assert_eq!(delta.remap_processor(1), None);
        assert_eq!(delta.remap_processor(3), Some(2));
    }

    #[test]
    fn failing_the_last_processor_is_a_clean_error() {
        let c = chain();
        let p = Platform::homogeneous(1, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
        assert_eq!(
            PlatformDelta::ProcessorFailed(0).apply(&c, &p).unwrap_err(),
            ModelError::EmptyPlatform
        );
    }

    #[test]
    fn out_of_range_processor_is_reported() {
        let (c, p) = (chain(), platform());
        for delta in [
            PlatformDelta::ProcessorFailed(9),
            PlatformDelta::SpeedDegraded {
                processor: 9,
                factor: 0.5,
            },
            PlatformDelta::RateRevised {
                processor: 9,
                rate: 0.1,
            },
        ] {
            assert_eq!(
                delta.apply(&c, &p).unwrap_err(),
                ModelError::UnknownProcessor(9)
            );
        }
    }

    #[test]
    fn degenerate_revisions_are_rejected_by_validation() {
        let (c, p) = (chain(), platform());
        assert!(matches!(
            PlatformDelta::SpeedDegraded {
                processor: 0,
                factor: 0.0
            }
            .apply(&c, &p)
            .unwrap_err(),
            ModelError::NonPositiveSpeed(0)
        ));
        assert!(matches!(
            PlatformDelta::RateRevised {
                processor: 0,
                rate: -1.0
            }
            .apply(&c, &p)
            .unwrap_err(),
            ModelError::NegativeFailureRate(_)
        ));
        assert_eq!(
            PlatformDelta::TaskWorkRevised { task: 2, work: 0.0 }
                .apply(&c, &p)
                .unwrap_err(),
            ModelError::NonPositiveWork(2)
        );
    }

    #[test]
    fn task_work_revision_changes_only_the_chain() {
        let (c, p) = (chain(), platform());
        let (c2, p2) = PlatformDelta::TaskWorkRevised {
            task: 1,
            work: 25.0,
        }
        .apply(&c, &p)
        .unwrap();
        assert_eq!(c2.work(1), 25.0);
        assert_eq!(c2.output_size(1), c.output_size(1));
        assert_eq!(p2.num_processors(), p.num_processors());
        // Prefix sums left of the revision are bit-identical.
        assert_eq!(c2.work_prefix()[..2], c.work_prefix()[..2]);
    }

    #[test]
    fn applied_deltas_round_trip_through_a_fresh_oracle() {
        let (c, p) = (chain(), platform());
        for delta in [
            PlatformDelta::ProcessorFailed(2),
            PlatformDelta::SpeedDegraded {
                processor: 1,
                factor: 0.5,
            },
            PlatformDelta::RateRevised {
                processor: 0,
                rate: 0.05,
            },
            PlatformDelta::TaskWorkRevised {
                task: 2,
                work: 33.0,
            },
        ] {
            let mut oracle = IntervalOracle::new(&c, &p);
            let applied = oracle.apply_delta(&c, &p, &delta).unwrap();
            let fresh = IntervalOracle::new(&applied.chain, &applied.platform);
            assert_eq!(oracle.len(), fresh.len());
            assert_eq!(oracle.num_processors(), fresh.num_processors());
            for first in 0..oracle.len() {
                for last in first..oracle.len() {
                    assert_eq!(oracle.work(first, last), fresh.work(first, last));
                    for class in 0..oracle.classes().len() {
                        assert_eq!(
                            oracle.class_block_reliability(class, first, last),
                            fresh.class_block_reliability(class, first, last)
                        );
                    }
                }
            }
        }
    }
}
