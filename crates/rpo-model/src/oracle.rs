//! The [`IntervalOracle`]: an O(1) interval-metrics kernel shared by every
//! solver.
//!
//! Each solver of the workspace repeatedly asks the same questions about
//! candidate intervals `τ_{j+1} … τ_i`: their work (Eq. 2), their boundary
//! communication times and reliabilities, the reliability of a replica block
//! (the inner term of Eq. 9), the replicated reliability `1 − (1 − r)^q`,
//! and the expected / worst-case interval cost (Eqs. 3–4). Recomputing these
//! from `TaskChain` and `Platform` turns the paper's `O(n² p K)` recurrences
//! into effectively cubic-in-`n` scans, and the portfolio repeats that work
//! once per backend.
//!
//! The oracle is built **once per `(chain, platform)` instance** in `O(n + p)`
//! and answers every query in `O(1)` (or `O(|replica set|)` for set queries):
//!
//! * interval work from the chain's prefix-sum array;
//! * boundary communication times `o_i / b` and reliabilities
//!   `e^{−λ_ℓ o_i / b}`, precomputed per boundary;
//! * processors deduplicated into [`ProcessorClass`]es of identical
//!   `(speed, failure rate)` through the embedded [`ClassView`] (the
//!   first-class class layer of [`crate::class_view`]), so per-class
//!   interval reliabilities are shared by every member;
//! * an optional dense triangular [`BlockReliabilityTable`] holding the
//!   replica-block reliability of **every** interval of one class, for the
//!   dynamic programs that sweep all `O(n²)` intervals.
//!
//! Every query mirrors the reference formulas of [`crate::reliability`] and
//! [`crate::timing`] operation for operation, so [`IntervalOracle::evaluate`]
//! returns bit-identical results to [`MappingEvaluation::evaluate`] — the
//! workspace property tests assert exactly that.

use std::sync::Arc;

use crate::class_view::ClassView;
use crate::{
    AppliedDelta, CanonicalHasher, Mapping, MappingEvaluation, Platform, PlatformDelta,
    ProcessorClass, ProcessorId, TaskChain,
};

/// Chain-level cache key of an oracle: the canonical digest of
/// `(chain, platform)` **without** the real-time bounds. Near-duplicate
/// problem instances (same chain and platform, different period/latency
/// bounds) share this key, so a batch driver can reuse one
/// [`IntervalOracle`] across all of them.
pub fn oracle_cache_key(chain: &TaskChain, platform: &Platform) -> u64 {
    use crate::Canonical;
    let mut hasher = CanonicalHasher::new();
    chain.canonical_digest(&mut hasher);
    platform.canonical_digest(&mut hasher);
    hasher.finish()
}

/// Dense triangular table of the replica-block reliability of every interval
/// `first ..= last` for one processor class: incoming communication ×
/// computation × outgoing communication (the inner term of Eq. 9).
///
/// Built in `O(n²)` (one `exp` per interval), queried in `O(1)`; the dynamic
/// programs of Algorithms 1–2 and the ILP column generation sweep all
/// intervals `q·p` times each, so the table amortizes the transcendentals
/// away from the hot loop.
#[derive(Debug, Clone)]
pub struct BlockReliabilityTable {
    n: usize,
    /// Row-major triangle: entry for `(first, last)` at
    /// `first·(2n − first + 1)/2 + (last − first)`.
    values: Vec<f64>,
}

impl BlockReliabilityTable {
    #[inline]
    fn index(&self, first: usize, last: usize) -> usize {
        debug_assert!(first <= last && last < self.n);
        first * (2 * self.n - first + 1) / 2 + (last - first)
    }

    /// Replica-block reliability of interval `first ..= last`.
    #[inline]
    pub fn get(&self, first: usize, last: usize) -> f64 {
        self.values[self.index(first, last)]
    }

    /// Replicated reliability `1 − (1 − block)^q` of interval `first ..= last`
    /// on `q` processors of the table's class.
    #[inline]
    pub fn replicated(&self, first: usize, last: usize, q: usize) -> f64 {
        replicate_block(self.get(first, last), q)
    }
}

/// `1 − (1 − block)^q` by repeated multiplication, matching the fold order of
/// [`crate::reliability::replicated_interval_reliability`] over `q` identical
/// replicas so the dynamic programs agree bit-for-bit with the evaluator.
#[inline]
pub fn replicate_block(block: f64, q: usize) -> f64 {
    let mut all_fail = 1.0;
    for _ in 0..q {
        all_fail *= 1.0 - block;
    }
    1.0 - all_fail
}

/// O(1) interval-metrics kernel for one `(chain, platform)` instance.
///
/// See the [module documentation](self) for the design; construction is
/// `O(n + p)`, every scalar query is `O(1)`.
#[derive(Debug, Clone)]
pub struct IntervalOracle {
    n: usize,
    /// `work_prefix[i]` = total work of tasks `0..i` (so `work_prefix[0] = 0`).
    work_prefix: Vec<f64>,
    /// Output data size per task, with the `o_n = 0` convention applied.
    output_size: Vec<f64>,
    /// Communication time `o_i / b` per boundary.
    comm_time: Vec<f64>,
    /// Communication reliability `e^{−λ_ℓ o_i / b}` per boundary.
    comm_rel: Vec<f64>,
    /// The class layer: deduplicated classes, member lists, and the
    /// per-class factored exponent prefixes (see [`crate::class_view`]).
    view: ClassView,
    max_replication: usize,
}

impl IntervalOracle {
    /// Builds the oracle for one `(chain, platform)` instance in `O(n + p)`.
    pub fn new(chain: &TaskChain, platform: &Platform) -> Self {
        let _span = rpo_obs::span!(
            "oracle.build",
            tasks = chain.len(),
            procs = platform.num_processors()
        );
        let n = chain.len();
        let link_rate = platform.link_failure_rate();
        let bandwidth = platform.bandwidth();

        let mut output_size = Vec::with_capacity(n);
        let mut comm_time = Vec::with_capacity(n);
        let mut comm_rel = Vec::with_capacity(n);
        for i in 0..n {
            let o = chain.output_size(i);
            output_size.push(o);
            comm_time.push(o / bandwidth);
            // Same expression as reliability::communication_reliability so
            // the values are bit-identical to the naive computation.
            comm_rel.push((-link_rate * (o / bandwidth)).exp());
        }

        let work_prefix = chain.work_prefix().to_vec();
        let view = ClassView::new(platform, &work_prefix);

        IntervalOracle {
            n,
            work_prefix,
            output_size,
            comm_time,
            comm_rel,
            view,
            max_replication: platform.max_replication(),
        }
    }

    /// Builds the oracle behind an [`Arc`], ready to be shared across the
    /// backends of a solver portfolio.
    pub fn shared(chain: &TaskChain, platform: &Platform) -> Arc<Self> {
        Arc::new(Self::new(chain, platform))
    }

    /// Number of tasks `n` of the underlying chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// A validated chain is never empty, so neither is its oracle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of processors `p` of the underlying platform.
    #[inline]
    pub fn num_processors(&self) -> usize {
        self.view.num_processors()
    }

    /// Replication bound `K` of the underlying platform.
    #[inline]
    pub fn max_replication(&self) -> usize {
        self.max_replication
    }

    /// The class layer of the underlying platform: class table, member
    /// lists, factored exponent prefixes (see [`crate::class_view`]).
    #[inline]
    pub fn class_view(&self) -> &ClassView {
        &self.view
    }

    /// The deduplicated processor classes.
    #[inline]
    pub fn classes(&self) -> &[ProcessorClass] {
        self.view.classes()
    }

    /// Class index of processor `u`.
    #[inline]
    pub fn class_of(&self, u: ProcessorId) -> usize {
        self.view.class_of(u)
    }

    /// Whether the platform has a single processor class (the paper's
    /// definition of homogeneity).
    #[inline]
    pub fn is_homogeneous(&self) -> bool {
        self.view.is_homogeneous()
    }

    /// Total work of the interval `first ..= last` (prefix-sum difference).
    #[inline]
    pub fn work(&self, first: usize, last: usize) -> f64 {
        debug_assert!(first <= last && last < self.n);
        self.work_prefix[last + 1] - self.work_prefix[first]
    }

    /// Total work of the whole chain.
    #[inline]
    pub fn total_work(&self) -> f64 {
        self.work_prefix[self.n]
    }

    /// The strictly increasing work prefix array (`n + 1` entries, first 0):
    /// `work(first, last) = work_prefix()[last + 1] − work_prefix()[first]`.
    /// Exposed so solvers can binary-search admissible interval starts.
    #[inline]
    pub fn work_prefix(&self) -> &[f64] {
        &self.work_prefix
    }

    /// Output data size of task `i` (`o_n = 0` convention applied).
    #[inline]
    pub fn output_size(&self, i: usize) -> f64 {
        self.output_size[i]
    }

    /// Input data size of an interval starting at `first` (the output of the
    /// previous task, 0 for the first interval).
    #[inline]
    pub fn input_size(&self, first: usize) -> f64 {
        if first == 0 {
            0.0
        } else {
            self.output_size[first - 1]
        }
    }

    /// Communication time of the incoming boundary of an interval starting at
    /// `first` (0 for the first interval).
    #[inline]
    pub fn input_comm_time(&self, first: usize) -> f64 {
        if first == 0 {
            0.0
        } else {
            self.comm_time[first - 1]
        }
    }

    /// Communication time of the outgoing boundary of an interval ending at
    /// `last` (0 for the last interval, by the `o_n = 0` convention).
    #[inline]
    pub fn output_comm_time(&self, last: usize) -> f64 {
        self.comm_time[last]
    }

    /// Reliability of the incoming communication of an interval starting at
    /// `first` (1 for the first interval).
    #[inline]
    pub fn input_comm_reliability(&self, first: usize) -> f64 {
        if first == 0 {
            1.0
        } else {
            self.comm_rel[first - 1]
        }
    }

    /// Reliability of the outgoing communication of an interval ending at
    /// `last` (1 for the last interval).
    #[inline]
    pub fn output_comm_reliability(&self, last: usize) -> f64 {
        self.comm_rel[last]
    }

    /// Reliability of interval `first ..= last` computed by one processor of
    /// class `class` (Eq. 2): `e^{−λ W / s}`.
    #[inline]
    pub fn class_interval_reliability(&self, class: usize, first: usize, last: usize) -> f64 {
        let c = self.view.class(class);
        // Same expression as reliability::interval_reliability.
        (-c.failure_rate * (self.work(first, last) / c.speed)).exp()
    }

    /// Reliability of interval `first ..= last` computed by processor `u`.
    #[inline]
    pub fn interval_reliability(&self, u: ProcessorId, first: usize, last: usize) -> f64 {
        self.class_interval_reliability(self.class_of(u), first, last)
    }

    /// Replica-block reliability of interval `first ..= last` on one
    /// processor of class `class`, including its boundary communications
    /// (the inner term of Eq. 9).
    #[inline]
    pub fn class_block_reliability(&self, class: usize, first: usize, last: usize) -> f64 {
        self.input_comm_reliability(first)
            * self.class_interval_reliability(class, first, last)
            * self.output_comm_reliability(last)
    }

    /// Replica-block reliability of interval `first ..= last` on processor
    /// `u`, including its boundary communications.
    #[inline]
    pub fn block_reliability(&self, u: ProcessorId, first: usize, last: usize) -> f64 {
        self.class_block_reliability(self.class_of(u), first, last)
    }

    /// Replicated reliability `1 − (1 − block)^q` of interval `first ..= last`
    /// on `q` processors of class `class`.
    #[inline]
    pub fn class_replicated_reliability(
        &self,
        class: usize,
        first: usize,
        last: usize,
        q: usize,
    ) -> f64 {
        replicate_block(self.class_block_reliability(class, first, last), q)
    }

    /// Replicated reliability of interval `first ..= last` on `q` processors
    /// of a **homogeneous** platform (class 0).
    #[inline]
    pub fn replicated_reliability(&self, first: usize, last: usize, q: usize) -> f64 {
        self.class_replicated_reliability(0, first, last, q)
    }

    /// Replicated reliability of interval `first ..= last` on the concrete
    /// (possibly heterogeneous) replica set `processors`:
    /// `1 − Π_u (1 − block_u)`.
    pub fn replicated_set_reliability(
        &self,
        processors: &[ProcessorId],
        first: usize,
        last: usize,
    ) -> f64 {
        let mut all_fail = 1.0;
        for &u in processors {
            all_fail *= 1.0 - self.block_reliability(u, first, last);
        }
        1.0 - all_fail
    }

    /// Whether the factored exponent prefixes are available for `class`
    /// (`ρ_c · W_total` within the overflow guard). When `false`, factored
    /// queries fall back to one exact `exp` per interval.
    #[inline]
    pub fn class_factored(&self, class: usize) -> bool {
        self.view.factored(class)
    }

    /// Dense replica-block reliability table of every interval for one class.
    ///
    /// Uses the factored exponent prefixes (`2(n+1)` exponentials total,
    /// already paid at oracle construction) when the class passes the
    /// `ρ·W ≤ 40` overflow guard, so building the table costs `O(n²)`
    /// multiplications and **zero** extra transcendentals; otherwise one
    /// exact `exp` per interval, as before. Factored entries can differ from
    /// [`Self::class_block_reliability`] by an ulp.
    pub fn class_block_table(&self, class: usize) -> BlockReliabilityTable {
        let n = self.n;
        let c = self.view.class(class);
        let mut values = Vec::with_capacity(n * (n + 1) / 2);
        if self.class_factored(class) {
            let (e_minus, e_plus) = (self.view.exp_minus(class), self.view.exp_plus(class));
            for (first, &e_first) in e_plus.iter().enumerate().take(n) {
                let in_rel = self.input_comm_reliability(first);
                for last in first..n {
                    values.push(in_rel * (e_minus[last + 1] * e_first) * self.comm_rel[last]);
                }
            }
        } else {
            for first in 0..n {
                let in_rel = self.input_comm_reliability(first);
                for last in first..n {
                    values.push(
                        in_rel
                            * (-c.failure_rate * (self.work(first, last) / c.speed)).exp()
                            * self.comm_rel[last],
                    );
                }
            }
        }
        BlockReliabilityTable { n, values }
    }

    /// Fills `out` with the replica-block reliabilities of every interval
    /// **ending at `last`** whose start lies in `first_lo ..= last`, for one
    /// class: `out[first − first_lo] = block(first, last)`.
    ///
    /// This is the gather phase of the lane-chunked dynamic programs: one
    /// contiguous scratch buffer per DP row, filled with pure multiplications
    /// when the class passes the factored-exponent guard (matching the
    /// factored values the scalar DP maximizes over, multiplication for
    /// multiplication), and with exact per-interval exponentials otherwise.
    pub fn fill_class_block_row(
        &self,
        class: usize,
        last: usize,
        first_lo: usize,
        out: &mut Vec<f64>,
    ) {
        debug_assert!(first_lo <= last && last < self.n);
        out.clear();
        let out_rel = self.comm_rel[last];
        if self.class_factored(class) {
            let (e_minus, e_plus) = (self.view.exp_minus(class), self.view.exp_plus(class));
            let e_last = e_minus[last + 1];
            out.extend((first_lo..=last).map(|first| {
                self.input_comm_reliability(first) * (e_last * e_plus[first]) * out_rel
            }));
        } else {
            out.extend(
                (first_lo..=last).map(|first| self.class_block_reliability(class, first, last)),
            );
        }
    }

    /// Fills `out` with the **pattern-replicated** reliabilities of every
    /// interval **ending at `last`** whose start lies in `first_lo ..= last`,
    /// for one class-level replica pattern `counts` (`counts[c]` = replicas
    /// drawn from class `c`):
    /// `out[first − first_lo] = 1 − Π_c (1 − block_c(first, last))^{counts[c]}`
    /// — the heterogeneous Eq. 9 inner term of the pattern.
    ///
    /// This is the gather phase of the chunked heterogeneous class DP
    /// (`rpo_algorithms::het_kernel`): one contiguous reliability row per
    /// `(boundary, pattern)` pair, produced **bit-identically** to the scalar
    /// DP's per-start computation — each class block uses the exact factored
    /// (or exact-`exp` fallback) expression of
    /// [`Self::fill_class_block_row`], each power `(1 − block)^q` is built by
    /// the same repeated multiplication, and the per-class powers are folded
    /// in ascending class order, so the chunked sweep maximizes over exactly
    /// the values the scalar inner loop produces.
    pub fn fill_pattern_block_row(
        &self,
        counts: &[usize],
        last: usize,
        first_lo: usize,
        out: &mut Vec<f64>,
    ) {
        debug_assert!(first_lo <= last && last < self.n);
        debug_assert_eq!(counts.len(), self.view.len());
        let width = last - first_lo + 1;
        out.clear();
        out.resize(width, 1.0); // per-start survive accumulator Π_c (1−block_c)^q_c
        let out_rel = self.comm_rel[last];
        for (class, &q) in counts.iter().enumerate() {
            if q == 0 {
                continue; // (1 − block)^0 = 1.0 exactly: a bit-exact no-op
            }
            if self.class_factored(class) {
                let (e_minus, e_plus) = (self.view.exp_minus(class), self.view.exp_plus(class));
                let e_last = e_minus[last + 1];
                for (slot, first) in (first_lo..=last).enumerate() {
                    let block =
                        self.input_comm_reliability(first) * (e_last * e_plus[first]) * out_rel;
                    let all_fail = 1.0 - block;
                    let mut pow = 1.0;
                    for _ in 0..q {
                        pow *= all_fail;
                    }
                    out[slot] *= pow;
                }
            } else {
                for (slot, first) in (first_lo..=last).enumerate() {
                    let block = self.class_block_reliability(class, first, last);
                    let all_fail = 1.0 - block;
                    let mut pow = 1.0;
                    for _ in 0..q {
                        pow *= all_fail;
                    }
                    out[slot] *= pow;
                }
            }
        }
        for survive in out.iter_mut() {
            *survive = 1.0 - *survive;
        }
    }

    /// Lane-major batched variant of [`Self::fill_class_block_row`]: one
    /// call gathers the replica-block reliabilities of every interval
    /// **ending at `last`** with start in `first_lo ..= last`, for a whole
    /// batch of same-shape oracles at once, writing
    /// `out[(first − first_lo) · oracles.len() + lane] = block_lane(first, last)`.
    ///
    /// This is the gather phase of the batched SoA dynamic program
    /// (`rpo_algorithms::batch_kernel`): the per-row bounds checks and the
    /// `first_lo ..= last` loop bookkeeping are paid once per batch instead
    /// of once per instance, and each lane's values are produced by **the
    /// exact expressions of [`Self::fill_class_block_row`]** (same factored
    /// guard, same multiplication order), so a lane's column is bit-identical
    /// to the row the single-instance gather would produce for that oracle.
    ///
    /// Oracles may have **fewer** tasks than `last + 1` (near-shape batches
    /// pad shorter lanes to the bucket-max task count): a lane whose chain
    /// has no task `last` gets `NaN`-poisoned entries, which the batched DP's
    /// masking discipline makes lose every select, so padded rows never
    /// contribute candidates. `class` indexes each oracle's own class table
    /// (same-shape batches share the class structure by construction).
    pub fn fill_class_block_row_lanes(
        oracles: &[&IntervalOracle],
        class: usize,
        last: usize,
        first_lo: usize,
        out: &mut Vec<f64>,
    ) {
        let lanes = oracles.len();
        let width = last - first_lo + 1;
        out.clear();
        out.resize(width * lanes, 0.0);
        for (lane, oracle) in oracles.iter().enumerate() {
            if last >= oracle.n {
                // Padded row for this lane: poison it so every candidate
                // built from it loses (see the batch kernel's masking rules).
                for offset in 0..width {
                    out[offset * lanes + lane] = f64::NAN;
                }
                continue;
            }
            debug_assert!(first_lo <= last);
            let out_rel = oracle.comm_rel[last];
            if oracle.class_factored(class) {
                let (e_minus, e_plus) = (oracle.view.exp_minus(class), oracle.view.exp_plus(class));
                let e_last = e_minus[last + 1];
                for (offset, first) in (first_lo..=last).enumerate() {
                    out[offset * lanes + lane] =
                        oracle.input_comm_reliability(first) * (e_last * e_plus[first]) * out_rel;
                }
            } else {
                for (offset, first) in (first_lo..=last).enumerate() {
                    out[offset * lanes + lane] = oracle.class_block_reliability(class, first, last);
                }
            }
        }
    }

    /// Expected computation time of interval `first ..= last` on the replica
    /// set `processors` (Eq. 3), mirroring
    /// [`crate::timing::expected_cost`] operation for operation.
    pub fn expected_cost(&self, first: usize, last: usize, processors: &[ProcessorId]) -> f64 {
        assert!(
            !processors.is_empty(),
            "expected_cost needs at least one replica"
        );
        let work = self.work(first, last);

        let mut sorted: Vec<ProcessorId> = processors.to_vec();
        sorted.sort_by(|&a, &b| {
            self.view
                .class(self.class_of(b))
                .speed
                .partial_cmp(&self.view.class(self.class_of(a)).speed)
                .expect("finite speeds")
                .then(a.cmp(&b))
        });

        let mut numerator = 0.0;
        let mut all_fail = 1.0;
        for &u in &sorted {
            let class = &self.view.class(self.class_of(u));
            let r_u = (-class.failure_rate * (work / class.speed)).exp();
            numerator += work / class.speed * r_u * all_fail;
            all_fail *= 1.0 - r_u;
        }
        let denominator = 1.0 - all_fail;
        if denominator <= 0.0 {
            self.worst_case_cost(first, last, processors)
        } else {
            numerator / denominator
        }
    }

    /// Worst-case computation time of interval `first ..= last` on the
    /// replica set `processors` (Eq. 4): the time on the slowest replica.
    pub fn worst_case_cost(&self, first: usize, last: usize, processors: &[ProcessorId]) -> f64 {
        assert!(
            !processors.is_empty(),
            "worst_case_cost needs at least one replica"
        );
        let slowest = processors
            .iter()
            .map(|&u| self.view.class(self.class_of(u)).speed)
            .fold(f64::INFINITY, f64::min);
        self.work(first, last) / slowest
    }

    /// Worst-case period requirement of the bare interval `first ..= last`
    /// on replicas of slowest speed `slowest_speed`:
    /// `max(o_in/b, W/s_slow, o_out/b)` — the feasibility test of
    /// Algorithm 2 and the heuristics.
    #[inline]
    pub fn period_requirement(&self, first: usize, last: usize, slowest_speed: f64) -> f64 {
        let incoming = self.input_comm_time(first);
        let outgoing = self.output_comm_time(last);
        let compute = self.work(first, last) / slowest_speed;
        incoming.max(compute).max(outgoing)
    }

    /// Latency contribution of interval `first ..= last` executed at `speed`:
    /// its computation time plus its outgoing communication time.
    #[inline]
    pub fn latency_term(&self, first: usize, last: usize, speed: f64) -> f64 {
        self.work(first, last) / speed + self.output_comm_time(last)
    }

    /// Latency contribution of interval `first ..= last` whose slowest
    /// replica belongs to `class`: the class compute time plus the outgoing
    /// communication time, in exactly the operation order of
    /// [`Self::evaluate`]'s worst-case latency sum (`work/s_slowest + comm`)
    /// — so a latency accumulated left-to-right from these terms is
    /// bit-identical to the evaluator's `worst_case_latency`. This is what
    /// the **exact** latency-aware dynamic program accumulates.
    #[inline]
    pub fn class_latency_term(&self, class: usize, first: usize, last: usize) -> f64 {
        self.view.class_compute_time(class, first, last) + self.comm_time[last]
    }

    /// [`Self::class_latency_term`] through the precomputed boundary-indexed
    /// compute grid ([`ClassView::compute_prefix`]): the prefix *difference*
    /// `W_{last+1}/s_c − W_first/s_c` plus the outgoing communication time —
    /// one subtraction and one addition, no division. Can differ from the
    /// exact term by an ulp (`a/s − b/s` vs `(a − b)/s`), so it backs the
    /// solvers that re-score their result exactly afterwards (the Lagrangian
    /// penalty sweep), not the bit-exact label DP.
    #[inline]
    pub fn class_latency_term_factored(&self, class: usize, first: usize, last: usize) -> f64 {
        let prefix = self.view.compute_prefix(class);
        (prefix[last + 1] - prefix[first]) + self.comm_time[last]
    }

    /// The smallest worst-case latency any mapping of this instance can
    /// achieve: the whole chain as one interval on a fastest-class replica,
    /// `W_total / s_max` (the final boundary has no outgoing communication
    /// by the `o_n = 0` convention, and every cut only adds communication).
    /// Latency bounds strictly below this floor are infeasible; a bound
    /// exactly at it is met by the single-interval mapping bit-for-bit.
    #[inline]
    pub fn latency_floor(&self) -> f64 {
        self.total_work() / self.view.max_speed()
    }

    /// Reliability of a complete mapping (Eq. 9) through the precomputed
    /// boundary reliabilities.
    pub fn mapping_reliability(&self, mapping: &Mapping) -> f64 {
        let mut r = 1.0;
        for mi in mapping.intervals() {
            r *= self.replicated_set_reliability(
                &mi.processors,
                mi.interval.first,
                mi.interval.last,
            );
        }
        r
    }

    /// Evaluates `mapping` for all five criteria of the paper, bit-identical
    /// to [`MappingEvaluation::evaluate`] but through the precomputed
    /// kernel (no per-call boundary `exp`s or divisions).
    pub fn evaluate(&self, mapping: &Mapping) -> MappingEvaluation {
        let mut expected_latency = 0.0;
        let mut worst_case_latency = 0.0;
        let mut max_comm = 0.0f64;
        let mut max_expected = 0.0f64;
        let mut max_worst = 0.0f64;
        for mi in mapping.intervals() {
            let (first, last) = (mi.interval.first, mi.interval.last);
            let comm = self.output_comm_time(last);
            let expected = self.expected_cost(first, last, &mi.processors);
            let worst = self.worst_case_cost(first, last, &mi.processors);
            expected_latency += expected + comm;
            worst_case_latency += worst + comm;
            max_comm = max_comm.max(comm);
            max_expected = max_expected.max(expected);
            max_worst = max_worst.max(worst);
        }
        MappingEvaluation {
            reliability: self.mapping_reliability(mapping),
            expected_latency,
            worst_case_latency,
            expected_period: max_comm.max(max_expected),
            worst_case_period: max_comm.max(max_worst),
        }
    }

    /// Applies a [`PlatformDelta`] **incrementally**: only the arrays the
    /// delta actually touches are rebuilt, everything else is left in place
    /// (and therefore bit-identical — debug builds assert the whole oracle
    /// against a fresh rebuild).
    ///
    /// * Processor deltas (`ProcessorFailed` / `SpeedDegraded` /
    ///   `RateRevised`) leave the chain-derived arrays (`work_prefix`,
    ///   output sizes, communication times/reliabilities) untouched and only
    ///   re-derive the class layer, moving the expensive per-class exponent
    ///   prefixes over from every surviving class (see
    ///   `ClassView::apply_platform_change`).
    /// * `TaskWorkRevised { task, .. }` recomputes the work prefix and
    ///   per-class prefixes **from boundary `task + 1` on only** — entries up
    ///   to `task` are bit-identical because [`TaskChain::new`] accumulates
    ///   the prefix left to right, so the same floating-point additions
    ///   produce the same bits.
    ///
    /// `chain` and `platform` must be the pre-delta pair this oracle was
    /// built for. On success the oracle answers queries for the returned
    /// post-delta pair; the [`AppliedDelta`] summary tells solvers how much
    /// of their own warm state survives.
    ///
    /// # Errors
    ///
    /// Any validation error of the post-delta chain/platform (e.g.
    /// [`crate::ModelError::EmptyPlatform`] when the last processor fails).
    /// The oracle is left untouched on error.
    pub fn apply_delta(
        &mut self,
        chain: &TaskChain,
        platform: &Platform,
        delta: &PlatformDelta,
    ) -> crate::Result<AppliedDelta> {
        let _span = rpo_obs::span!("oracle.apply_delta", tasks = self.n);
        debug_assert_eq!(chain.len(), self.n, "oracle built for a different chain");
        let (new_chain, new_platform) = delta.apply(chain, platform)?;
        let (first_affected_task, classes_changed, factored_changed) = match *delta {
            PlatformDelta::ProcessorFailed(..)
            | PlatformDelta::SpeedDegraded { .. }
            | PlatformDelta::RateRevised { .. } => {
                let table_changed = self.view.apply_platform_change(&new_platform);
                // A parameter change invalidates every interval's block
                // reliabilities; a member-only change invalidates none.
                let first = if table_changed { 0 } else { self.n };
                (first, table_changed, false)
            }
            PlatformDelta::TaskWorkRevised { task, .. } => {
                let new_prefix = new_chain.work_prefix();
                debug_assert_eq!(&new_prefix[..=task], &self.work_prefix[..=task]);
                self.work_prefix[task + 1..].copy_from_slice(&new_prefix[task + 1..]);
                let factored_changed = self.view.apply_work_prefix_change(new_prefix, task + 1);
                (task, false, factored_changed)
            }
        };
        // max_replication, bandwidth-derived communication arrays and output
        // sizes are unchanged by every delta kind.
        #[cfg(debug_assertions)]
        debug_assert!(
            self.bitwise_eq(&IntervalOracle::new(&new_chain, &new_platform)),
            "incremental oracle diverged from a fresh rebuild"
        );
        Ok(AppliedDelta {
            chain: new_chain,
            platform: new_platform,
            first_affected_task,
            classes_changed,
            factored_changed,
        })
    }

    /// Exact structural equality — bitwise on every float — backing the
    /// debug assertion that [`apply_delta`](Self::apply_delta) reproduces a
    /// fresh rebuild.
    #[cfg(debug_assertions)]
    fn bitwise_eq(&self, other: &IntervalOracle) -> bool {
        self.n == other.n
            && self.work_prefix == other.work_prefix
            && self.output_size == other.output_size
            && self.comm_time == other.comm_time
            && self.comm_rel == other.comm_rel
            && self.max_replication == other.max_replication
            && self.view.bitwise_eq(&other.view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reliability, timing, Interval, MappedInterval, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0), (40.0, 3.0)]).unwrap()
    }

    fn het_platform() -> Platform {
        PlatformBuilder::new()
            .processor(2.0, 0.01)
            .processor(2.0, 0.01)
            .processor(1.0, 0.02)
            .processor(1.0, 0.02)
            .bandwidth(2.0)
            .link_failure_rate(1e-3)
            .max_replication(3)
            .build()
            .unwrap()
    }

    #[test]
    fn classes_deduplicate_identical_processors() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        assert_eq!(oracle.classes().len(), 2);
        assert_eq!(oracle.class_of(0), oracle.class_of(1));
        assert_eq!(oracle.class_of(2), oracle.class_of(3));
        assert_ne!(oracle.class_of(0), oracle.class_of(2));
        assert_eq!(oracle.classes()[0].members, 2);
        assert!(!oracle.is_homogeneous());
        assert_eq!(oracle.num_processors(), 4);
        assert_eq!(oracle.max_replication(), 3);
    }

    #[test]
    fn work_and_boundaries_match_chain() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        assert_eq!(oracle.len(), 4);
        assert_eq!(oracle.work(0, 3), 100.0);
        assert_eq!(oracle.work(1, 2), 50.0);
        assert_eq!(oracle.total_work(), 100.0);
        assert_eq!(oracle.output_size(3), 0.0); // o_n = 0 convention
        assert_eq!(oracle.input_size(0), 0.0);
        assert_eq!(oracle.input_size(2), 6.0);
        assert_eq!(oracle.input_comm_time(2), 3.0);
        assert_eq!(oracle.output_comm_time(0), 1.0);
    }

    #[test]
    fn reliabilities_match_naive_functions() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        for first in 0..4 {
            for last in first..4 {
                let itv = Interval { first, last };
                for u in 0..4 {
                    assert_eq!(
                        oracle.interval_reliability(u, first, last),
                        reliability::interval_reliability(&c, &p, u, itv),
                    );
                    assert_eq!(
                        oracle.block_reliability(u, first, last),
                        reliability::replica_block_reliability(
                            &c,
                            &p,
                            u,
                            itv,
                            oracle.input_size(first),
                            itv.output_size(&c),
                        ),
                    );
                }
                let set = [0usize, 2];
                assert_eq!(
                    oracle.replicated_set_reliability(&set, first, last),
                    reliability::replicated_interval_reliability(
                        &c,
                        &p,
                        &set,
                        itv,
                        oracle.input_size(first),
                        itv.output_size(&c),
                    ),
                );
            }
        }
    }

    /// `|a − b| ≤ tol·max(|a|, |b|)` (reliabilities are in `[0, 1]`, so this
    /// is at least as strict as an absolute comparison).
    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * a.abs().max(b.abs()),
            "{a} vs {b} differ by more than {tol} relative"
        );
    }

    #[test]
    fn block_table_matches_scalar_queries() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        for class in 0..oracle.classes().len() {
            // The table is built from the factored exponent prefixes, so it
            // can differ from the exact per-interval exponentials by an ulp.
            let table = oracle.class_block_table(class);
            for first in 0..4 {
                for last in first..4 {
                    assert_close(
                        table.get(first, last),
                        oracle.class_block_reliability(class, first, last),
                        1e-12,
                    );
                    for q in 1..=3 {
                        assert_close(
                            table.replicated(first, last, q),
                            oracle.class_replicated_reliability(class, first, last, q),
                            1e-12,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_row_gather_matches_the_table() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        let mut row = Vec::new();
        for class in 0..oracle.classes().len() {
            assert!(oracle.class_factored(class));
            let table = oracle.class_block_table(class);
            for last in 0..4 {
                for first_lo in 0..=last {
                    oracle.fill_class_block_row(class, last, first_lo, &mut row);
                    assert_eq!(row.len(), last - first_lo + 1);
                    for (offset, &block) in row.iter().enumerate() {
                        assert_eq!(block, table.get(first_lo + offset, last));
                    }
                }
            }
        }
    }

    #[test]
    fn lane_major_gather_matches_per_oracle_rows() {
        // Two different chains on the same-shape platform: each lane's
        // column must equal its own single-instance row gather bit-for-bit.
        let c0 = chain();
        let c1 =
            TaskChain::from_pairs(&[(12.0, 1.0), (18.0, 7.0), (33.0, 2.0), (37.0, 5.0)]).unwrap();
        let p = het_platform();
        let o0 = IntervalOracle::new(&c0, &p);
        let o1 = IntervalOracle::new(&c1, &p);
        let oracles = [&o0, &o1];
        let mut lane_row = Vec::new();
        let mut scalar_row = Vec::new();
        for class in 0..o0.classes().len() {
            for last in 0..4 {
                for first_lo in 0..=last {
                    IntervalOracle::fill_class_block_row_lanes(
                        &oracles,
                        class,
                        last,
                        first_lo,
                        &mut lane_row,
                    );
                    assert_eq!(lane_row.len(), (last - first_lo + 1) * oracles.len());
                    for (lane, oracle) in oracles.iter().enumerate() {
                        oracle.fill_class_block_row(class, last, first_lo, &mut scalar_row);
                        for (offset, &block) in scalar_row.iter().enumerate() {
                            assert_eq!(block, lane_row[offset * oracles.len() + lane]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_exponents_fall_back_to_exact_blocks() {
        // ρ·W = 10·100 far beyond the factored guard: the table and the row
        // gather must use the exact per-interval path (and agree exactly).
        let c = chain();
        let p = PlatformBuilder::new()
            .identical_processors(2, 1.0, 10.0)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(2)
            .build()
            .unwrap();
        let oracle = IntervalOracle::new(&c, &p);
        assert!(!oracle.class_factored(0));
        let table = oracle.class_block_table(0);
        let mut row = Vec::new();
        for first in 0..4 {
            for last in first..4 {
                assert_eq!(
                    table.get(first, last),
                    oracle.class_block_reliability(0, first, last)
                );
            }
        }
        oracle.fill_class_block_row(0, 3, 0, &mut row);
        for (first, &block) in row.iter().enumerate() {
            assert_eq!(block, oracle.class_block_reliability(0, first, 3));
        }
    }

    #[test]
    fn oracle_cache_key_ignores_bounds_but_not_structure() {
        let c = chain();
        let p = het_platform();
        let key = oracle_cache_key(&c, &p);
        assert_eq!(key, oracle_cache_key(&c, &p));
        let other_chain =
            TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0), (41.0, 3.0)]).unwrap();
        assert_ne!(key, oracle_cache_key(&other_chain, &p));
        let other_platform = PlatformBuilder::new()
            .identical_processors(4, 1.0, 1e-3)
            .build()
            .unwrap();
        assert_ne!(key, oracle_cache_key(&c, &other_platform));
    }

    #[test]
    fn costs_match_timing_functions() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        for first in 0..4 {
            for last in first..4 {
                let itv = Interval { first, last };
                for set in [vec![0], vec![2, 0], vec![0, 1, 3]] {
                    assert_eq!(
                        oracle.expected_cost(first, last, &set),
                        timing::expected_cost(&c, &p, itv, &set)
                    );
                    assert_eq!(
                        oracle.worst_case_cost(first, last, &set),
                        timing::worst_case_cost(&c, &p, itv, &set)
                    );
                }
                assert_eq!(
                    oracle.period_requirement(first, last, 1.0),
                    timing::interval_period_requirement(&c, &p, itv, 1.0)
                );
            }
        }
    }

    #[test]
    fn evaluate_is_bit_identical_to_direct_evaluator() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 2]),
                MappedInterval::new(Interval { first: 2, last: 3 }, vec![1, 3]),
            ],
            &c,
            &p,
        )
        .unwrap();
        let fast = oracle.evaluate(&mapping);
        let slow = MappingEvaluation::evaluate(&c, &p, &mapping);
        assert_eq!(fast, slow);
        assert_eq!(fast.reliability, oracle.mapping_reliability(&mapping));
    }

    #[test]
    fn class_latency_terms_match_the_evaluator_bit_for_bit() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        for class in 0..oracle.classes().len() {
            // A member of the class as the single (slowest) replica.
            let member = oracle.class_view().members(class)[0];
            for first in 0..4 {
                for last in first..4 {
                    let term = oracle.class_latency_term(class, first, last);
                    let direct = oracle.worst_case_cost(first, last, &[member])
                        + oracle.output_comm_time(last);
                    assert_eq!(term, direct);
                }
            }
            // The boundary-indexed compute grid holds W_i / s_c.
            let prefix = oracle.class_view().compute_prefix(class);
            assert_eq!(prefix.len(), oracle.len() + 1);
            for (i, &value) in prefix.iter().enumerate() {
                assert_eq!(
                    value,
                    oracle.work_prefix()[i] / oracle.classes()[class].speed
                );
            }
        }
    }

    #[test]
    fn factored_latency_terms_match_the_exact_ones() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        for class in 0..oracle.classes().len() {
            for first in 0..4 {
                for last in first..4 {
                    assert_close(
                        oracle.class_latency_term_factored(class, first, last),
                        oracle.class_latency_term(class, first, last),
                        1e-12,
                    );
                }
            }
        }
    }

    #[test]
    fn latency_floor_is_achieved_by_the_single_interval_mapping() {
        let c = chain();
        let p = het_platform();
        let oracle = IntervalOracle::new(&c, &p);
        // Fastest class is class 0 (speed 2); map the whole chain onto one
        // of its members.
        let fastest = (0..p.num_processors())
            .max_by(|&a, &b| p.speed(a).partial_cmp(&p.speed(b)).unwrap())
            .unwrap();
        let mapping = Mapping::new(
            vec![MappedInterval::new(
                Interval { first: 0, last: 3 },
                vec![fastest],
            )],
            &c,
            &p,
        )
        .unwrap();
        let eval = oracle.evaluate(&mapping);
        assert_eq!(eval.worst_case_latency, oracle.latency_floor());
    }

    #[test]
    fn replicate_block_matches_powers() {
        assert_eq!(replicate_block(0.9, 1), 1.0 - 0.1f64.powi(1));
        let two = replicate_block(0.9, 2);
        assert!((two - (1.0 - 0.1 * 0.1)).abs() < 1e-15);
        assert_eq!(replicate_block(0.5, 0), 0.0);
    }
}
