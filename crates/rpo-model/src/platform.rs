//! Distributed platform model (Section 2.2 of the paper).

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result};

/// Index of a processor within a [`Platform`] (0-based).
pub type ProcessorId = usize;

/// A processor `P_u`, characterized by its speed `s_u` and its failure rate
/// per time unit `λ_u` (Poisson transient-failure model of Shatz and Wang).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Speed `s_u`: amount of work processed per time unit (strictly positive).
    pub speed: f64,
    /// Failure rate `λ_u` per time unit (non-negative).
    pub failure_rate: f64,
}

impl Processor {
    /// Creates a new processor description.
    pub fn new(speed: f64, failure_rate: f64) -> Self {
        Processor {
            speed,
            failure_rate,
        }
    }
}

/// The target distributed platform: `p` processors connected by homogeneous
/// point-to-point links, with the bounded multi-port constraint `K`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    processors: Vec<Processor>,
    /// Bandwidth `b` of every point-to-point link.
    bandwidth: f64,
    /// Failure rate `λ_ℓ` per time unit of every link.
    link_failure_rate: f64,
    /// Bounded multi-port constraint `K`: the maximum number of simultaneous
    /// outgoing connections of a processor, and hence also the maximum number
    /// of replicas per interval.
    max_replication: usize,
}

impl Platform {
    /// Builds a validated platform.
    ///
    /// # Errors
    ///
    /// Returns an error if there is no processor, if any speed is
    /// non-positive, any failure rate negative, the bandwidth non-positive or
    /// the replication bound zero.
    pub fn new(
        processors: Vec<Processor>,
        bandwidth: f64,
        link_failure_rate: f64,
        max_replication: usize,
    ) -> Result<Self> {
        if processors.is_empty() {
            return Err(ModelError::EmptyPlatform);
        }
        for (u, p) in processors.iter().enumerate() {
            if !p.speed.is_finite() || !p.failure_rate.is_finite() {
                return Err(ModelError::NotFinite("processor speed/failure rate"));
            }
            if p.speed <= 0.0 {
                return Err(ModelError::NonPositiveSpeed(u));
            }
            if p.failure_rate < 0.0 {
                return Err(ModelError::NegativeFailureRate(format!("processor {u}")));
            }
        }
        if !bandwidth.is_finite() || !link_failure_rate.is_finite() {
            return Err(ModelError::NotFinite("bandwidth/link failure rate"));
        }
        if bandwidth <= 0.0 {
            return Err(ModelError::NonPositiveBandwidth);
        }
        if link_failure_rate < 0.0 {
            return Err(ModelError::NegativeFailureRate(
                "communication link".to_string(),
            ));
        }
        if max_replication == 0 {
            return Err(ModelError::ZeroReplicationBound);
        }
        Ok(Platform {
            processors,
            bandwidth,
            link_failure_rate,
            max_replication,
        })
    }

    /// Builds a fully homogeneous platform of `p` identical processors.
    pub fn homogeneous(
        p: usize,
        speed: f64,
        failure_rate: f64,
        bandwidth: f64,
        link_failure_rate: f64,
        max_replication: usize,
    ) -> Result<Self> {
        Self::new(
            vec![Processor::new(speed, failure_rate); p],
            bandwidth,
            link_failure_rate,
            max_replication,
        )
    }

    /// Number of processors `p`.
    pub fn num_processors(&self) -> usize {
        self.processors.len()
    }

    /// The processors, indexed by [`ProcessorId`].
    pub fn processors(&self) -> &[Processor] {
        &self.processors
    }

    /// The processor with index `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn processor(&self, u: ProcessorId) -> Processor {
        self.processors[u]
    }

    /// Speed `s_u` of processor `u`.
    pub fn speed(&self, u: ProcessorId) -> f64 {
        self.processors[u].speed
    }

    /// Failure rate `λ_u` of processor `u`.
    pub fn failure_rate(&self, u: ProcessorId) -> f64 {
        self.processors[u].failure_rate
    }

    /// Link bandwidth `b`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Link failure rate `λ_ℓ`.
    pub fn link_failure_rate(&self) -> f64 {
        self.link_failure_rate
    }

    /// Replication bound `K` (bounded multi-port constraint).
    pub fn max_replication(&self) -> usize {
        self.max_replication
    }

    /// Whether all processors have the same speed and the same failure rate
    /// (the paper's definition of a *homogeneous* platform).
    pub fn is_homogeneous(&self) -> bool {
        let first = self.processors[0];
        self.processors
            .iter()
            .all(|p| p.speed == first.speed && p.failure_rate == first.failure_rate)
    }

    /// Smallest processor speed of the platform.
    pub fn min_speed(&self) -> f64 {
        self.processors
            .iter()
            .map(|p| p.speed)
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest processor speed of the platform.
    pub fn max_speed(&self) -> f64 {
        self.processors.iter().map(|p| p.speed).fold(0.0, f64::max)
    }

    /// Time to transmit a data set of size `o` on one link: `o / b`.
    pub fn comm_time(&self, output_size: f64) -> f64 {
        output_size / self.bandwidth
    }

    /// Processor indices sorted by decreasing speed (ties broken by index),
    /// as required by the expected-cost formula (Eq. 3).
    pub fn processors_by_decreasing_speed(&self) -> Vec<ProcessorId> {
        let mut ids: Vec<ProcessorId> = (0..self.processors.len()).collect();
        ids.sort_by(|&a, &b| {
            self.processors[b]
                .speed
                .partial_cmp(&self.processors[a].speed)
                .expect("finite speeds")
                .then(a.cmp(&b))
        });
        ids
    }

    /// Processor indices sorted by increasing `λ_u / s_u` (most reliable per
    /// unit of work first), the order used by the heterogeneous allocation
    /// heuristic of Section 7.2.
    pub fn processors_by_reliability_ratio(&self) -> Vec<ProcessorId> {
        let mut ids: Vec<ProcessorId> = (0..self.processors.len()).collect();
        ids.sort_by(|&a, &b| {
            let ra = self.processors[a].failure_rate / self.processors[a].speed;
            let rb = self.processors[b].failure_rate / self.processors[b].speed;
            ra.partial_cmp(&rb).expect("finite ratios").then(a.cmp(&b))
        });
        ids
    }
}

/// Fluent builder for [`Platform`], convenient for examples and tests.
#[derive(Debug, Clone, Default)]
pub struct PlatformBuilder {
    processors: Vec<Processor>,
    bandwidth: f64,
    link_failure_rate: f64,
    max_replication: usize,
}

impl PlatformBuilder {
    /// Starts a new builder with bandwidth 1, no link failures and `K = 1`.
    pub fn new() -> Self {
        PlatformBuilder {
            processors: Vec::new(),
            bandwidth: 1.0,
            link_failure_rate: 0.0,
            max_replication: 1,
        }
    }

    /// Adds a single processor.
    pub fn processor(mut self, speed: f64, failure_rate: f64) -> Self {
        self.processors.push(Processor::new(speed, failure_rate));
        self
    }

    /// Adds `count` identical processors.
    pub fn identical_processors(mut self, count: usize, speed: f64, failure_rate: f64) -> Self {
        self.processors.extend(std::iter::repeat_n(
            Processor::new(speed, failure_rate),
            count,
        ));
        self
    }

    /// Sets the link bandwidth `b`.
    pub fn bandwidth(mut self, bandwidth: f64) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the link failure rate `λ_ℓ`.
    pub fn link_failure_rate(mut self, rate: f64) -> Self {
        self.link_failure_rate = rate;
        self
    }

    /// Sets the replication bound `K`.
    pub fn max_replication(mut self, k: usize) -> Self {
        self.max_replication = k;
        self
    }

    /// Validates and builds the platform.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Platform::new`].
    pub fn build(self) -> Result<Platform> {
        Platform::new(
            self.processors,
            self.bandwidth,
            self.link_failure_rate,
            self.max_replication,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn het_platform() -> Platform {
        PlatformBuilder::new()
            .processor(2.0, 1e-6)
            .processor(1.0, 1e-7)
            .processor(4.0, 1e-5)
            .bandwidth(10.0)
            .link_failure_rate(1e-5)
            .max_replication(2)
            .build()
            .unwrap()
    }

    #[test]
    fn homogeneous_constructor_and_predicate() {
        let p = Platform::homogeneous(4, 1.0, 1e-8, 1.0, 1e-5, 3).unwrap();
        assert_eq!(p.num_processors(), 4);
        assert!(p.is_homogeneous());
        assert_eq!(p.max_replication(), 3);
        assert_eq!(p.min_speed(), 1.0);
        assert_eq!(p.max_speed(), 1.0);
    }

    #[test]
    fn heterogeneous_predicate() {
        assert!(!het_platform().is_homogeneous());
        // Same speeds but different failure rates is still heterogeneous.
        let p = PlatformBuilder::new()
            .processor(1.0, 1e-6)
            .processor(1.0, 1e-7)
            .build()
            .unwrap();
        assert!(!p.is_homogeneous());
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Platform::new(vec![], 1.0, 0.0, 1).unwrap_err(),
            ModelError::EmptyPlatform
        );
        assert_eq!(
            Platform::new(vec![Processor::new(0.0, 0.0)], 1.0, 0.0, 1).unwrap_err(),
            ModelError::NonPositiveSpeed(0)
        );
        assert_eq!(
            Platform::new(vec![Processor::new(1.0, -1.0)], 1.0, 0.0, 1).unwrap_err(),
            ModelError::NegativeFailureRate("processor 0".to_string())
        );
        assert_eq!(
            Platform::new(vec![Processor::new(1.0, 0.0)], 0.0, 0.0, 1).unwrap_err(),
            ModelError::NonPositiveBandwidth
        );
        assert_eq!(
            Platform::new(vec![Processor::new(1.0, 0.0)], 1.0, -1.0, 1).unwrap_err(),
            ModelError::NegativeFailureRate("communication link".to_string())
        );
        assert_eq!(
            Platform::new(vec![Processor::new(1.0, 0.0)], 1.0, 0.0, 0).unwrap_err(),
            ModelError::ZeroReplicationBound
        );
    }

    #[test]
    fn decreasing_speed_order() {
        let p = het_platform();
        assert_eq!(p.processors_by_decreasing_speed(), vec![2, 0, 1]);
    }

    #[test]
    fn reliability_ratio_order() {
        let p = het_platform();
        // ratios: P0 = 5e-7, P1 = 1e-7, P2 = 2.5e-6
        assert_eq!(p.processors_by_reliability_ratio(), vec![1, 0, 2]);
    }

    #[test]
    fn comm_time_uses_bandwidth() {
        let p = het_platform();
        assert!((p.comm_time(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_speed_heterogeneous() {
        let p = het_platform();
        assert_eq!(p.min_speed(), 1.0);
        assert_eq!(p.max_speed(), 4.0);
    }
}
