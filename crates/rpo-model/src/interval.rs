//! Intervals of consecutive tasks and interval partitions (Section 2.3).

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result, TaskChain};

/// An interval `I_j` of consecutive tasks, given by its first and last task
/// indices (0-based, both inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Index of the first task of the interval.
    pub first: usize,
    /// Index of the last task of the interval (inclusive).
    pub last: usize,
}

impl Interval {
    /// Creates an interval covering tasks `first..=last`.
    ///
    /// # Errors
    ///
    /// Returns an error if `first > last`.
    pub fn new(first: usize, last: usize) -> Result<Self> {
        if first > last {
            return Err(ModelError::InvalidInterval {
                first,
                last,
                chain_len: usize::MAX,
            });
        }
        Ok(Interval { first, last })
    }

    /// Number of tasks in the interval.
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// An interval always contains at least one task.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the interval contains task `i`.
    pub fn contains(&self, i: usize) -> bool {
        self.first <= i && i <= self.last
    }

    /// Total work `W_j` of the interval within `chain`.
    pub fn work(&self, chain: &TaskChain) -> f64 {
        chain.interval_work(self.first, self.last)
    }

    /// Output data size of the interval, i.e. the output size of its last
    /// task (`o_{l_j}`), following the paper's `o_n = 0` convention.
    pub fn output_size(&self, chain: &TaskChain) -> f64 {
        chain.output_size(self.last)
    }

    /// Iterates over the task indices of the interval.
    pub fn task_indices(&self) -> impl Iterator<Item = usize> {
        self.first..=self.last
    }
}

/// A partition of a chain of `n` tasks into `m` intervals of consecutive
/// tasks: `f_1 = 1`, `f_j = l_{j-1} + 1` and `l_m = n` in the paper's
/// notation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalPartition {
    intervals: Vec<Interval>,
    chain_len: usize,
}

impl IntervalPartition {
    /// Builds a validated partition of a chain of `chain_len` tasks.
    ///
    /// # Errors
    ///
    /// Returns an error if the intervals are not a contiguous cover of
    /// `0..chain_len`.
    pub fn new(intervals: Vec<Interval>, chain_len: usize) -> Result<Self> {
        if intervals.is_empty() || chain_len == 0 {
            return Err(ModelError::IncompletePartition);
        }
        for itv in &intervals {
            if itv.first > itv.last || itv.last >= chain_len {
                return Err(ModelError::InvalidInterval {
                    first: itv.first,
                    last: itv.last,
                    chain_len,
                });
            }
        }
        if intervals[0].first != 0 || intervals[intervals.len() - 1].last != chain_len - 1 {
            return Err(ModelError::IncompletePartition);
        }
        for j in 1..intervals.len() {
            if intervals[j].first != intervals[j - 1].last + 1 {
                return Err(ModelError::NonContiguousPartition { at_interval: j });
            }
        }
        Ok(IntervalPartition {
            intervals,
            chain_len,
        })
    }

    /// Builds the partition defined by the (sorted, strictly increasing) list
    /// of last-task indices of every interval except the implicit last one.
    ///
    /// `from_cut_points(&[2, 4], 7)` produces intervals `[0,2] [3,4] [5,6]`.
    ///
    /// # Errors
    ///
    /// Returns an error if the cut points are not strictly increasing or out
    /// of range.
    pub fn from_cut_points(cut_after: &[usize], chain_len: usize) -> Result<Self> {
        let mut intervals = Vec::with_capacity(cut_after.len() + 1);
        let mut first = 0usize;
        for &c in cut_after {
            if c >= chain_len.saturating_sub(1) || c < first {
                return Err(ModelError::InvalidInterval {
                    first,
                    last: c,
                    chain_len,
                });
            }
            intervals.push(Interval { first, last: c });
            first = c + 1;
        }
        intervals.push(Interval {
            first,
            last: chain_len.saturating_sub(1),
        });
        Self::new(intervals, chain_len)
    }

    /// The single-interval partition (the whole chain on one interval).
    pub fn single(chain_len: usize) -> Result<Self> {
        Self::from_cut_points(&[], chain_len)
    }

    /// The finest partition (one task per interval).
    pub fn one_task_per_interval(chain_len: usize) -> Result<Self> {
        let cuts: Vec<usize> = (0..chain_len.saturating_sub(1)).collect();
        Self::from_cut_points(&cuts, chain_len)
    }

    /// Number of intervals `m`.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// A validated partition is never empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The intervals, in pipeline order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The `j`-th interval (0-based).
    pub fn interval(&self, j: usize) -> Interval {
        self.intervals[j]
    }

    /// Length of the chain this partition covers.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// The cut points (last-task index of every interval but the final one).
    pub fn cut_points(&self) -> Vec<usize> {
        self.intervals[..self.intervals.len() - 1]
            .iter()
            .map(|i| i.last)
            .collect()
    }

    /// Largest interval work within `chain` (the computation part of the
    /// worst-case period on a unit-speed platform).
    pub fn max_interval_work(&self, chain: &TaskChain) -> f64 {
        self.intervals
            .iter()
            .map(|i| i.work(chain))
            .fold(0.0, f64::max)
    }

    /// Largest boundary communication size of the partition.
    pub fn max_boundary_output(&self, chain: &TaskChain) -> f64 {
        self.intervals
            .iter()
            .map(|i| i.output_size(chain))
            .fold(0.0, f64::max)
    }

    /// Sum of the boundary communication sizes of the partition.
    pub fn total_boundary_output(&self, chain: &TaskChain) -> f64 {
        self.intervals.iter().map(|i| i.output_size(chain)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskChain;

    fn chain4() -> TaskChain {
        TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 3.0), (30.0, 4.0), (40.0, 5.0)]).unwrap()
    }

    #[test]
    fn interval_basics() {
        let i = Interval::new(1, 3).unwrap();
        assert_eq!(i.len(), 3);
        assert!(i.contains(2));
        assert!(!i.contains(0));
        assert!(Interval::new(3, 1).is_err());
    }

    #[test]
    fn interval_work_and_output() {
        let c = chain4();
        let i = Interval::new(1, 2).unwrap();
        assert_eq!(i.work(&c), 50.0);
        assert_eq!(i.output_size(&c), 4.0);
        let last = Interval::new(2, 3).unwrap();
        assert_eq!(last.output_size(&c), 0.0);
    }

    #[test]
    fn partition_from_cut_points() {
        let p = IntervalPartition::from_cut_points(&[0, 2], 4).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.interval(0), Interval { first: 0, last: 0 });
        assert_eq!(p.interval(1), Interval { first: 1, last: 2 });
        assert_eq!(p.interval(2), Interval { first: 3, last: 3 });
        assert_eq!(p.cut_points(), vec![0, 2]);
    }

    #[test]
    fn partition_rejects_bad_cut_points() {
        assert!(IntervalPartition::from_cut_points(&[3], 4).is_err());
        assert!(IntervalPartition::from_cut_points(&[2, 1], 4).is_err());
        assert!(IntervalPartition::from_cut_points(&[1, 1], 4).is_err());
    }

    #[test]
    fn partition_validation() {
        let ok = IntervalPartition::new(
            vec![
                Interval { first: 0, last: 1 },
                Interval { first: 2, last: 3 },
            ],
            4,
        );
        assert!(ok.is_ok());

        let gap = IntervalPartition::new(
            vec![
                Interval { first: 0, last: 1 },
                Interval { first: 3, last: 3 },
            ],
            4,
        );
        assert_eq!(
            gap.unwrap_err(),
            ModelError::NonContiguousPartition { at_interval: 1 }
        );

        let incomplete =
            IntervalPartition::new(vec![Interval { first: 0, last: 2 }], 4).unwrap_err();
        assert_eq!(incomplete, ModelError::IncompletePartition);

        let out_of_range =
            IntervalPartition::new(vec![Interval { first: 0, last: 4 }], 4).unwrap_err();
        assert!(matches!(out_of_range, ModelError::InvalidInterval { .. }));
    }

    #[test]
    fn canonical_partitions() {
        let single = IntervalPartition::single(4).unwrap();
        assert_eq!(single.len(), 1);
        let finest = IntervalPartition::one_task_per_interval(4).unwrap();
        assert_eq!(finest.len(), 4);
        assert!(IntervalPartition::single(0).is_err());
    }

    #[test]
    fn partition_aggregates() {
        let c = chain4();
        let p = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        assert_eq!(p.max_interval_work(&c), 70.0);
        assert_eq!(p.max_boundary_output(&c), 3.0);
        assert_eq!(p.total_boundary_output(&c), 3.0);
    }
}
