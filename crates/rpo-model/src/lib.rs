//! Application, platform, failure and replication models for pipelined
//! real-time systems.
//!
//! This crate implements the framework of Section 2 of
//! *Reliability and performance optimization of pipelined real-time systems*
//! (Benoit, Dufossé, Girault, Robert — ICPP'10 / JPDC'13):
//!
//! * a linear **chain of tasks** `τ_1 → … → τ_n`, each task `τ_i` described by
//!   its amount of work `w_i` and its output data size `o_i` ([`Task`],
//!   [`TaskChain`]);
//! * a **distributed platform** of `p` processors with individual speeds and
//!   failure rates, homogeneous point-to-point links of bandwidth `b` and
//!   failure rate `λ_ℓ`, and a bounded multi-port constraint `K`
//!   ([`Processor`], [`Platform`]);
//! * **interval mappings with replication**: the chain is split into intervals
//!   of consecutive tasks, and each interval is replicated on at most `K`
//!   processors ([`Interval`], [`IntervalPartition`], [`Mapping`]);
//! * the **evaluation** of a mapping for the five criteria of the paper:
//!   reliability (Eq. 9), expected and worst-case latency (Eqs. 5, 7),
//!   expected and worst-case period (Eqs. 6, 8), built from the per-interval
//!   expected cost (Eq. 3), worst-case cost (Eq. 4) and the exponential
//!   reliability model (Eqs. 1, 2) — see [`evaluate`], [`reliability`] and
//!   [`timing`].
//!
//! The crate is deliberately free of any solver logic: optimal algorithms and
//! heuristics live in `rpo-algorithms`, reliability block diagrams in
//! `rpo-rbd`, and the failure-injection simulator in `rpo-sim`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canonical;
pub mod class_view;
pub mod delta;
pub mod energy;
pub mod error;
pub mod evaluate;
pub mod interval;
pub mod mapping;
pub mod oracle;
pub mod platform;
pub mod reliability;
pub mod task;
pub mod timing;

pub use canonical::{Canonical, CanonicalHasher};
pub use class_view::{assignment_from_segments, ClassAssignment, ClassView, ProcessorClass};
pub use delta::{AppliedDelta, PlatformDelta};
pub use energy::{EnergyEvaluation, PowerModel};
pub use error::ModelError;
pub use evaluate::{BoundCheck, MappingEvaluation};
pub use interval::{Interval, IntervalPartition};
pub use mapping::{MappedInterval, Mapping};
pub use oracle::{oracle_cache_key, BlockReliabilityTable, IntervalOracle};
pub use platform::{Platform, PlatformBuilder, Processor, ProcessorId};
pub use task::{Task, TaskChain};

/// Convenient result alias used across the model crate.
pub type Result<T> = std::result::Result<T, ModelError>;
