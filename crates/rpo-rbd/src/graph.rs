//! Generic reliability block diagram graphs.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::{Block, BlockId};

/// A node of the diagram: the virtual source, the virtual destination, or a
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Node {
    /// Virtual source `S` (always operational).
    Source,
    /// Virtual destination `D` (always operational).
    Destination,
    /// A block of the diagram.
    Block(BlockId),
}

/// A reliability block diagram: an acyclic oriented graph of blocks between a
/// source `S` and a destination `D`. The diagram is operational iff at least
/// one path from `S` to `D` consists only of operational blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Rbd {
    blocks: Vec<Block>,
    /// Successors of the source.
    source_out: Vec<BlockId>,
    /// Blocks with an arc to the destination.
    dest_in: Vec<BlockId>,
    /// `succ[b]` = blocks directly reachable from block `b`.
    succ: Vec<Vec<BlockId>>,
}

impl Rbd {
    /// Creates an empty diagram.
    pub fn new() -> Self {
        Rbd::default()
    }

    /// Adds a block and returns its identifier.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = self.blocks.len();
        self.blocks.push(block);
        self.succ.push(Vec::new());
        id
    }

    /// Adds an arc between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint refers to a block that does not exist, if the arc
    /// enters the source, leaves the destination, or directly connects source
    /// to destination.
    pub fn add_edge(&mut self, from: Node, to: Node) {
        match (from, to) {
            (Node::Source, Node::Block(b)) => {
                assert!(b < self.blocks.len(), "unknown block {b}");
                self.source_out.push(b);
            }
            (Node::Block(b), Node::Destination) => {
                assert!(b < self.blocks.len(), "unknown block {b}");
                self.dest_in.push(b);
            }
            (Node::Block(a), Node::Block(b)) => {
                assert!(a < self.blocks.len(), "unknown block {a}");
                assert!(b < self.blocks.len(), "unknown block {b}");
                self.succ[a].push(b);
            }
            (Node::Source, Node::Destination) => {
                panic!("source cannot be directly connected to destination")
            }
            _ => panic!("invalid arc {from:?} -> {to:?}"),
        }
    }

    /// Number of blocks in the diagram.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks of the diagram, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block with identifier `id`.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id]
    }

    /// Blocks that are direct successors of the source.
    pub fn source_successors(&self) -> &[BlockId] {
        &self.source_out
    }

    /// Blocks that have an arc to the destination.
    pub fn destination_predecessors(&self) -> &[BlockId] {
        &self.dest_in
    }

    /// Direct successors of block `b`.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succ[b]
    }

    /// Whether the diagram is operational when exactly the blocks of `up` are
    /// operational: is there a path from `S` to `D` using only blocks of `up`?
    pub fn is_operational(&self, up: &dyn Fn(BlockId) -> bool) -> bool {
        let mut visited = vec![false; self.blocks.len()];
        let mut stack: Vec<BlockId> = self.source_out.iter().copied().filter(|&b| up(b)).collect();
        let dest: HashSet<BlockId> = self.dest_in.iter().copied().collect();
        while let Some(b) = stack.pop() {
            if visited[b] {
                continue;
            }
            visited[b] = true;
            if dest.contains(&b) {
                return true;
            }
            for &n in &self.succ[b] {
                if up(n) && !visited[n] {
                    stack.push(n);
                }
            }
        }
        false
    }

    /// Checks that the diagram is acyclic (a structural requirement of RBDs).
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm on the block-to-block arcs only.
        let n = self.blocks.len();
        let mut indeg = vec![0usize; n];
        for succs in &self.succ {
            for &b in succs {
                indeg[b] += 1;
            }
        }
        let mut queue: Vec<BlockId> = (0..n).filter(|&b| indeg[b] == 0).collect();
        let mut seen = 0usize;
        while let Some(b) = queue.pop() {
            seen += 1;
            for &m in &self.succ[b] {
                indeg[m] -= 1;
                if indeg[m] == 0 {
                    queue.push(m);
                }
            }
        }
        seen == n
    }

    /// Enumerates every simple path from the source to the destination, as
    /// lists of block identifiers. Exponential in general; intended for small
    /// diagrams and tests.
    pub fn all_paths(&self) -> Vec<Vec<BlockId>> {
        let dest: HashSet<BlockId> = self.dest_in.iter().copied().collect();
        let mut paths = Vec::new();
        let mut current = Vec::new();
        for &start in &self.source_out {
            self.extend_path(start, &dest, &mut current, &mut paths);
        }
        paths
    }

    fn extend_path(
        &self,
        b: BlockId,
        dest: &HashSet<BlockId>,
        current: &mut Vec<BlockId>,
        paths: &mut Vec<Vec<BlockId>>,
    ) {
        if current.contains(&b) {
            return;
        }
        current.push(b);
        if dest.contains(&b) {
            paths.push(current.clone());
        }
        for &n in &self.succ[b] {
            self.extend_path(n, dest, current, paths);
        }
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Block;

    /// The bridge-free diagram of Figure 4: two interval replicas, four
    /// communication blocks, two replicas of the next interval.
    fn figure4_like() -> Rbd {
        let mut rbd = Rbd::new();
        let i1p1 = rbd.add_block(Block::other(0.9, "I1/P1"));
        let i1p2 = rbd.add_block(Block::other(0.9, "I1/P2"));
        let c13 = rbd.add_block(Block::other(0.99, "o1/L13"));
        let c14 = rbd.add_block(Block::other(0.99, "o1/L14"));
        let c23 = rbd.add_block(Block::other(0.99, "o1/L23"));
        let c24 = rbd.add_block(Block::other(0.99, "o1/L24"));
        let i2p3 = rbd.add_block(Block::other(0.8, "I2/P3"));
        let i2p4 = rbd.add_block(Block::other(0.8, "I2/P4"));
        rbd.add_edge(Node::Source, Node::Block(i1p1));
        rbd.add_edge(Node::Source, Node::Block(i1p2));
        rbd.add_edge(Node::Block(i1p1), Node::Block(c13));
        rbd.add_edge(Node::Block(i1p1), Node::Block(c14));
        rbd.add_edge(Node::Block(i1p2), Node::Block(c23));
        rbd.add_edge(Node::Block(i1p2), Node::Block(c24));
        rbd.add_edge(Node::Block(c13), Node::Block(i2p3));
        rbd.add_edge(Node::Block(c23), Node::Block(i2p3));
        rbd.add_edge(Node::Block(c14), Node::Block(i2p4));
        rbd.add_edge(Node::Block(c24), Node::Block(i2p4));
        rbd.add_edge(Node::Block(i2p3), Node::Destination);
        rbd.add_edge(Node::Block(i2p4), Node::Destination);
        rbd
    }

    #[test]
    fn construction_and_accessors() {
        let rbd = figure4_like();
        assert_eq!(rbd.num_blocks(), 8);
        assert_eq!(rbd.source_successors().len(), 2);
        assert_eq!(rbd.destination_predecessors().len(), 2);
        assert!(rbd.is_acyclic());
    }

    #[test]
    fn operational_checks() {
        let rbd = figure4_like();
        // Everything up: operational.
        assert!(rbd.is_operational(&|_| true));
        // Nothing up: not operational.
        assert!(!rbd.is_operational(&|_| false));
        // Only the path I1/P1 -> o1/L13 -> I2/P3 up (blocks 0, 2, 6).
        assert!(rbd.is_operational(&|b| b == 0 || b == 2 || b == 6));
        // Both first-interval replicas down: not operational.
        assert!(!rbd.is_operational(&|b| b != 0 && b != 1));
        // All communications down: not operational.
        assert!(!rbd.is_operational(&|b| !(2..=5).contains(&b)));
    }

    #[test]
    fn all_paths_enumerates_the_four_chains() {
        let rbd = figure4_like();
        let mut paths = rbd.all_paths();
        paths.sort();
        assert_eq!(paths.len(), 4);
        assert!(paths.contains(&vec![0, 2, 6]));
        assert!(paths.contains(&vec![0, 3, 7]));
        assert!(paths.contains(&vec![1, 4, 6]));
        assert!(paths.contains(&vec![1, 5, 7]));
    }

    #[test]
    fn cycle_detection() {
        let mut rbd = Rbd::new();
        let a = rbd.add_block(Block::other(0.9, "a"));
        let b = rbd.add_block(Block::other(0.9, "b"));
        rbd.add_edge(Node::Source, Node::Block(a));
        rbd.add_edge(Node::Block(a), Node::Block(b));
        rbd.add_edge(Node::Block(b), Node::Block(a));
        rbd.add_edge(Node::Block(b), Node::Destination);
        assert!(!rbd.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn unknown_block_edge_panics() {
        let mut rbd = Rbd::new();
        rbd.add_edge(Node::Source, Node::Block(3));
    }

    #[test]
    #[should_panic(expected = "source cannot be directly connected")]
    fn source_to_destination_panics() {
        let mut rbd = Rbd::new();
        rbd.add_edge(Node::Source, Node::Destination);
    }
}
