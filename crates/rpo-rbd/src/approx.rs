//! Approximate reliability of general (non series-parallel) RBDs.
//!
//! The paper's conclusion lists, as future work, removing the routing
//! operations and "accurately approximating the reliability of general
//! systems (non serial-parallel)". This module provides the standard tools
//! for that investigation:
//!
//! * [`esary_proschan_bounds`] — the classical lower bound (minimal cut sets
//!   in series) and upper bound (minimal path sets in parallel) on the exact
//!   reliability;
//! * [`monte_carlo_reliability`] — an unbiased Monte-Carlo estimator that
//!   samples block states and checks operability, usable on diagrams far too
//!   large for exact evaluation.
//!
//! Both are validated against the exact evaluators of [`crate::exact`] in the
//! tests, and compared against the routing-operation model in the ablation
//! benchmarks.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cutsets::minimal_cut_sets;
use crate::{BlockId, Rbd};

/// Esary–Proschan style bounds on the reliability of a general RBD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBounds {
    /// Lower bound: product over minimal cut sets of their parallel
    /// reliability (exact when no block belongs to two cuts).
    pub lower: f64,
    /// Upper bound: complement of the product over minimal path sets of their
    /// failure probability (exact when no block belongs to two paths).
    pub upper: f64,
}

/// Computes the Esary–Proschan lower and upper bounds of the diagram.
///
/// Both enumerations (minimal cut sets and simple paths) are exponential in
/// general; this is intended for the moderately sized diagrams produced by
/// interval mappings.
///
/// # Panics
///
/// Panics if the diagram has more than 30 blocks (same limit as the exact
/// evaluators).
pub fn esary_proschan_bounds(rbd: &Rbd) -> ReliabilityBounds {
    let cuts = minimal_cut_sets(rbd);
    let lower = cuts
        .iter()
        .map(|cut| {
            1.0 - cut
                .iter()
                .map(|&b| 1.0 - rbd.block(b).reliability)
                .product::<f64>()
        })
        .product();
    let paths = rbd.all_paths();
    let upper = if paths.is_empty() {
        0.0
    } else {
        1.0 - paths
            .iter()
            .map(|path| {
                1.0 - path
                    .iter()
                    .map(|&b| rbd.block(b).reliability)
                    .product::<f64>()
            })
            .product::<f64>()
    };
    ReliabilityBounds { lower, upper }
}

/// Result of a Monte-Carlo reliability estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloReliability {
    /// Number of sampled block-state vectors.
    pub samples: usize,
    /// Fraction of samples in which the diagram was operational.
    pub estimate: f64,
    /// Half-width of the 95% confidence interval (normal approximation).
    pub confidence95: f64,
}

/// Estimates the reliability of an arbitrary RBD by sampling the up/down state
/// of every block independently and checking source-destination operability.
///
/// The estimator is unbiased and its cost is `O(samples · (blocks + arcs))`,
/// regardless of the diagram structure.
pub fn monte_carlo_reliability(rbd: &Rbd, samples: usize, seed: u64) -> MonteCarloReliability {
    assert!(samples > 0, "at least one sample is required");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rbd.num_blocks();
    let mut up = vec![false; n];
    let mut operational = 0usize;
    for _ in 0..samples {
        for (b, state) in up.iter_mut().enumerate() {
            *state = rng.gen::<f64>() < rbd.block(b).reliability;
        }
        if rbd.is_operational(&|b: BlockId| up[b]) {
            operational += 1;
        }
    }
    let estimate = operational as f64 / samples as f64;
    MonteCarloReliability {
        samples,
        estimate,
        confidence95: 1.96 * (estimate * (1.0 - estimate) / samples as f64).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, Block, Node, Rbd};

    fn bridge(p: f64) -> Rbd {
        let mut rbd = Rbd::new();
        let a = rbd.add_block(Block::other(p, "a"));
        let b = rbd.add_block(Block::other(p, "b"));
        let c = rbd.add_block(Block::other(p, "c"));
        let d = rbd.add_block(Block::other(p, "d"));
        let e = rbd.add_block(Block::other(p, "e"));
        rbd.add_edge(Node::Source, Node::Block(a));
        rbd.add_edge(Node::Source, Node::Block(b));
        rbd.add_edge(Node::Block(a), Node::Block(d));
        rbd.add_edge(Node::Block(b), Node::Block(e));
        rbd.add_edge(Node::Block(a), Node::Block(c));
        rbd.add_edge(Node::Block(b), Node::Block(c));
        rbd.add_edge(Node::Block(c), Node::Block(d));
        rbd.add_edge(Node::Block(c), Node::Block(e));
        rbd.add_edge(Node::Block(d), Node::Destination);
        rbd.add_edge(Node::Block(e), Node::Destination);
        rbd
    }

    fn series_parallel() -> Rbd {
        let mut rbd = Rbd::new();
        let a = rbd.add_block(Block::other(0.9, "a"));
        let b = rbd.add_block(Block::other(0.85, "b"));
        let c = rbd.add_block(Block::other(0.95, "c"));
        rbd.add_edge(Node::Source, Node::Block(a));
        rbd.add_edge(Node::Source, Node::Block(b));
        rbd.add_edge(Node::Block(a), Node::Block(c));
        rbd.add_edge(Node::Block(b), Node::Block(c));
        rbd.add_edge(Node::Block(c), Node::Destination);
        rbd
    }

    #[test]
    fn bounds_bracket_the_exact_reliability_of_the_bridge() {
        for p in [0.5, 0.8, 0.95, 0.99] {
            let rbd = bridge(p);
            let exact = exact::factoring(&rbd);
            let bounds = esary_proschan_bounds(&rbd);
            assert!(
                bounds.lower <= exact + 1e-12 && exact <= bounds.upper + 1e-12,
                "p = {p}: {} <= {exact} <= {} violated",
                bounds.lower,
                bounds.upper
            );
            // The bounds tighten as blocks become more reliable.
            if p >= 0.95 {
                assert!(bounds.upper - bounds.lower < 0.02);
            }
        }
    }

    #[test]
    fn lower_bound_is_exact_when_cuts_are_disjoint() {
        // Cuts {a, b} and {c} are disjoint, so the cut-set bound is exact;
        // the paths {a, c} and {b, c} share block c, so the path bound is a
        // strict over-approximation.
        let rbd = series_parallel();
        let exact = exact::state_enumeration(&rbd);
        let bounds = esary_proschan_bounds(&rbd);
        assert!((bounds.lower - exact).abs() < 1e-12);
        assert!(bounds.upper > exact);
    }

    #[test]
    fn upper_bound_is_exact_when_paths_are_disjoint() {
        // A purely parallel diagram: each path is a single distinct block.
        let mut rbd = Rbd::new();
        for r in [0.7, 0.8, 0.9] {
            let b = rbd.add_block(Block::other(r, "b"));
            rbd.add_edge(Node::Source, Node::Block(b));
            rbd.add_edge(Node::Block(b), Node::Destination);
        }
        let exact = exact::state_enumeration(&rbd);
        let bounds = esary_proschan_bounds(&rbd);
        assert!((bounds.upper - exact).abs() < 1e-12);
        assert!((bounds.lower - exact).abs() < 1e-12); // the single cut {a,b,c} is also exact
    }

    #[test]
    fn monte_carlo_estimate_converges_to_the_exact_value() {
        let rbd = bridge(0.8);
        let exact = exact::factoring(&rbd);
        let mc = monte_carlo_reliability(&rbd, 200_000, 42);
        assert!(
            (mc.estimate - exact).abs() < 3.0 * mc.confidence95 + 1e-3,
            "estimate {} vs exact {exact}",
            mc.estimate
        );
        assert!(mc.confidence95 < 0.01);
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let rbd = bridge(0.7);
        assert_eq!(
            monte_carlo_reliability(&rbd, 10_000, 1),
            monte_carlo_reliability(&rbd, 10_000, 1)
        );
        assert_ne!(
            monte_carlo_reliability(&rbd, 10_000, 1).estimate,
            monte_carlo_reliability(&rbd, 10_000, 2).estimate
        );
    }

    #[test]
    fn degenerate_diagrams() {
        // No path to destination: everything is zero.
        let mut rbd = Rbd::new();
        let a = rbd.add_block(Block::other(0.9, "a"));
        rbd.add_edge(Node::Source, Node::Block(a));
        let bounds = esary_proschan_bounds(&rbd);
        assert_eq!(bounds.upper, 0.0);
        assert_eq!(monte_carlo_reliability(&rbd, 100, 3).estimate, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        monte_carlo_reliability(&bridge(0.5), 0, 1);
    }
}
