//! Reliability Block Diagrams (RBDs) for replicated interval mappings.
//!
//! Section 4 of the paper evaluates the reliability of a mapping by building
//! its reliability block diagram: an acyclic oriented graph whose nodes are
//! blocks (an interval on a processor, or a data dependency on a link) and
//! which is *operational* iff there is a path from the source to the
//! destination made of operational blocks only.
//!
//! This crate provides the full substrate:
//!
//! * a generic RBD graph ([`Rbd`]) with arbitrary structure (the shape of
//!   Figure 4, which mappings without routing operations produce);
//! * **exact** reliability evaluation by state enumeration and by pivotal
//!   (factoring) decomposition ([`exact`]) — exponential, usable as ground
//!   truth on small diagrams;
//! * **minimal cut set** enumeration and the serial approximation of the
//!   reliability described in Section 4 ([`cutsets`]);
//! * **series-parallel** reliability expressions with linear-time evaluation
//!   ([`series_parallel`]);
//! * builders from a mapping: the general RBD of Figure 4 and the
//!   serial-parallel RBD of Figure 5 obtained by inserting zero-cost routing
//!   operations between consecutive intervals ([`mapping_rbd`]).
//!
//! The closed form of Eq. (9) in `rpo-model` corresponds exactly to the
//! series-parallel RBD with routing operations; this equivalence is checked
//! by the tests of [`mapping_rbd`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod approx;
pub mod block;
pub mod cutsets;
pub mod exact;
pub mod graph;
pub mod mapping_rbd;
pub mod series_parallel;

pub use approx::{esary_proschan_bounds, monte_carlo_reliability, ReliabilityBounds};
pub use block::{Block, BlockId, BlockKind};
pub use graph::{Node, Rbd};
pub use series_parallel::SpExpr;
