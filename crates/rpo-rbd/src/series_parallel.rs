//! Series-parallel reliability expressions.
//!
//! When routing operations are inserted between intervals (Figure 5 of the
//! paper), the RBD of a mapping is series-parallel by construction and its
//! reliability can be evaluated in time linear in the number of blocks. This
//! module provides the corresponding expression tree.

use serde::{Deserialize, Serialize};

/// A series-parallel reliability expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpExpr {
    /// A single block with the given reliability.
    Block(f64),
    /// Series composition: every sub-expression must be operational.
    Series(Vec<SpExpr>),
    /// Parallel composition: at least one sub-expression must be operational.
    Parallel(Vec<SpExpr>),
}

impl SpExpr {
    /// A perfectly reliable block (used for routing operations).
    pub fn perfect() -> Self {
        SpExpr::Block(1.0)
    }

    /// Series composition of an iterator of expressions.
    pub fn series(items: impl IntoIterator<Item = SpExpr>) -> Self {
        SpExpr::Series(items.into_iter().collect())
    }

    /// Parallel composition of an iterator of expressions.
    pub fn parallel(items: impl IntoIterator<Item = SpExpr>) -> Self {
        SpExpr::Parallel(items.into_iter().collect())
    }

    /// Evaluates the reliability of the expression.
    ///
    /// * series: product of the sub-reliabilities (an empty series is
    ///   perfectly reliable);
    /// * parallel: `1 − Π (1 − r_i)` (an empty parallel composition always
    ///   fails).
    pub fn reliability(&self) -> f64 {
        match self {
            SpExpr::Block(r) => *r,
            SpExpr::Series(children) => children.iter().map(SpExpr::reliability).product(),
            SpExpr::Parallel(children) => {
                1.0 - children
                    .iter()
                    .map(|c| 1.0 - c.reliability())
                    .product::<f64>()
            }
        }
    }

    /// Number of elementary blocks in the expression.
    pub fn num_blocks(&self) -> usize {
        match self {
            SpExpr::Block(_) => 1,
            SpExpr::Series(children) | SpExpr::Parallel(children) => {
                children.iter().map(SpExpr::num_blocks).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_evaluation() {
        assert_eq!(SpExpr::Block(0.75).reliability(), 0.75);
        assert_eq!(SpExpr::perfect().reliability(), 1.0);
    }

    #[test]
    fn series_is_product() {
        let e = SpExpr::series([SpExpr::Block(0.9), SpExpr::Block(0.8), SpExpr::Block(0.5)]);
        assert!((e.reliability() - 0.36).abs() < 1e-12);
        assert_eq!(e.num_blocks(), 3);
    }

    #[test]
    fn parallel_is_one_minus_product_of_failures() {
        let e = SpExpr::parallel([SpExpr::Block(0.9), SpExpr::Block(0.8)]);
        assert!((e.reliability() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn nested_expression() {
        // (0.9 ∥ 0.9) in series with 0.99.
        let e = SpExpr::series([
            SpExpr::parallel([SpExpr::Block(0.9), SpExpr::Block(0.9)]),
            SpExpr::Block(0.99),
        ]);
        assert!((e.reliability() - 0.99 * (1.0 - 0.01)).abs() < 1e-12);
        assert_eq!(e.num_blocks(), 3);
    }

    #[test]
    fn empty_compositions() {
        assert_eq!(SpExpr::series([]).reliability(), 1.0);
        assert_eq!(SpExpr::parallel([]).reliability(), 0.0);
    }
}
