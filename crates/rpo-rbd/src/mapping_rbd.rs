//! Building reliability block diagrams from interval mappings.
//!
//! Two constructions are provided, mirroring Figures 4 and 5 of the paper:
//!
//! * [`general_rbd`]: the *direct* diagram in which every replica of interval
//!   `I_j` sends its output to every replica of `I_{j+1}` over a dedicated
//!   point-to-point link block. This diagram has no particular structure and
//!   its exact evaluation is exponential.
//! * [`routing_sp_expr`] / [`routing_rbd`]: the *serial-parallel* diagram
//!   obtained by inserting a zero-cost, perfectly reliable routing operation
//!   between consecutive intervals. Each replica block then carries its
//!   incoming and outgoing communications in series, the replicas of one
//!   interval are in parallel, and the intervals are in series — which is
//!   exactly the closed form of Eq. (9) implemented in
//!   [`rpo_model::reliability::mapping_reliability`].

use rpo_model::{reliability, Mapping, Platform, TaskChain};

use crate::{Block, BlockKind, Node, Rbd, SpExpr};

/// Builds the general (non series-parallel) RBD of a mapping, following the
/// shape of Figure 4: one block per interval replica and one block per
/// point-to-point communication between consecutive replicas.
pub fn general_rbd(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> Rbd {
    let mut rbd = Rbd::new();
    let mut previous_layer: Vec<(usize, usize)> = Vec::new(); // (processor, block id)

    for (j, mi) in mapping.iter() {
        // Interval replica blocks.
        let mut layer = Vec::with_capacity(mi.processors.len());
        for &u in &mi.processors {
            let r = reliability::interval_reliability(chain, platform, u, mi.interval);
            let id = rbd.add_block(Block {
                reliability: r,
                kind: BlockKind::IntervalOnProcessor {
                    interval: j,
                    processor: u,
                },
            });
            layer.push((u, id));
        }

        if j == 0 {
            for &(_, id) in &layer {
                rbd.add_edge(Node::Source, Node::Block(id));
            }
        } else {
            // Communication blocks from every replica of the previous interval
            // to every replica of this one.
            let prev_interval = mapping.interval(j - 1).interval;
            let comm_r =
                reliability::communication_reliability(platform, prev_interval.output_size(chain));
            for &(from, from_id) in &previous_layer {
                for &(to, to_id) in &layer {
                    let comm = rbd.add_block(Block {
                        reliability: comm_r,
                        kind: BlockKind::CommunicationOnLink {
                            interval: j - 1,
                            from,
                            to,
                        },
                    });
                    rbd.add_edge(Node::Block(from_id), Node::Block(comm));
                    rbd.add_edge(Node::Block(comm), Node::Block(to_id));
                }
            }
        }
        previous_layer = layer;
    }

    for &(_, id) in &previous_layer {
        rbd.add_edge(Node::Block(id), Node::Destination);
    }
    rbd
}

/// Builds the series-parallel reliability expression of a mapping under the
/// routing-operation model of Figure 5 (the model evaluated by Eq. 9).
///
/// Every replica of interval `I_j` is the series composition of its incoming
/// communication (from the routing operation collecting `o_{l_{j-1}}`), its
/// computation, and its outgoing communication (towards the next routing
/// operation); replicas are parallel; intervals (and the perfectly reliable
/// routing operations between them) are in series.
pub fn routing_sp_expr(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> SpExpr {
    let mut stages: Vec<SpExpr> = Vec::with_capacity(2 * mapping.num_intervals());
    let mut input_size = 0.0;
    for (j, mi) in mapping.iter() {
        let output_size = mi.interval.output_size(chain);
        let replicas = mi.processors.iter().map(|&u| {
            SpExpr::series([
                SpExpr::Block(reliability::communication_reliability(platform, input_size)),
                SpExpr::Block(reliability::interval_reliability(
                    chain,
                    platform,
                    u,
                    mi.interval,
                )),
                SpExpr::Block(reliability::communication_reliability(
                    platform,
                    output_size,
                )),
            ])
        });
        stages.push(SpExpr::parallel(replicas));
        if j + 1 < mapping.num_intervals() {
            // The routing operation itself: zero duration, reliability 1.
            stages.push(SpExpr::perfect());
        }
        input_size = output_size;
    }
    SpExpr::series(stages)
}

/// Builds the routing-operation diagram of Figure 5 as an explicit [`Rbd`]
/// graph (including the routing blocks), mainly for cross-checking the
/// series-parallel evaluation against the exact evaluators on small mappings.
///
/// The routing operation after interval `j` is hosted on the first replica
/// processor of interval `j + 1` (any processor would do: the block is
/// perfectly reliable and the incoming/outgoing communications are modelled
/// separately).
pub fn routing_rbd(chain: &TaskChain, platform: &Platform, mapping: &Mapping) -> Rbd {
    let mut rbd = Rbd::new();
    let mut previous: Option<usize> = None; // block id of the previous routing operation
    let mut input_size = 0.0;

    for (j, mi) in mapping.iter() {
        let output_size = mi.interval.output_size(chain);
        let in_comm_r = reliability::communication_reliability(platform, input_size);
        let out_comm_r = reliability::communication_reliability(platform, output_size);

        let mut replica_tails = Vec::with_capacity(mi.processors.len());
        for &u in &mi.processors {
            let compute = rbd.add_block(Block {
                reliability: reliability::interval_reliability(chain, platform, u, mi.interval)
                    * in_comm_r,
                kind: BlockKind::IntervalOnProcessor {
                    interval: j,
                    processor: u,
                },
            });
            match previous {
                None => rbd.add_edge(Node::Source, Node::Block(compute)),
                Some(route) => rbd.add_edge(Node::Block(route), Node::Block(compute)),
            }
            if j + 1 < mapping.num_intervals() {
                let out_comm = rbd.add_block(Block {
                    reliability: out_comm_r,
                    kind: BlockKind::CommunicationOnLink {
                        interval: j,
                        from: u,
                        to: mapping.interval(j + 1).processors[0],
                    },
                });
                rbd.add_edge(Node::Block(compute), Node::Block(out_comm));
                replica_tails.push(out_comm);
            } else {
                replica_tails.push(compute);
            }
        }

        if j + 1 < mapping.num_intervals() {
            let route = rbd.add_block(Block {
                reliability: 1.0,
                kind: BlockKind::Routing {
                    after_interval: j,
                    processor: mapping.interval(j + 1).processors[0],
                },
            });
            for tail in replica_tails {
                rbd.add_edge(Node::Block(tail), Node::Block(route));
            }
            previous = Some(route);
        } else {
            for tail in replica_tails {
                rbd.add_edge(Node::Block(tail), Node::Destination);
            }
        }
        input_size = output_size;
    }
    rbd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use rpo_model::{Interval, MappedInterval, PlatformBuilder};

    fn setup() -> (TaskChain, Platform, Mapping) {
        let chain =
            TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0), (15.0, 1.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .processor(2.0, 0.002)
            .processor(1.0, 0.001)
            .processor(3.0, 0.004)
            .processor(1.5, 0.003)
            .processor(2.5, 0.002)
            .bandwidth(2.0)
            .link_failure_rate(0.01)
            .max_replication(3)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                MappedInterval::new(Interval { first: 2, last: 3 }, vec![2, 3, 4]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        (chain, platform, mapping)
    }

    #[test]
    fn routing_expression_matches_closed_form_eq9() {
        let (chain, platform, mapping) = setup();
        let expr = routing_sp_expr(&chain, &platform, &mapping);
        let closed_form = reliability::mapping_reliability(&chain, &platform, &mapping);
        assert!((expr.reliability() - closed_form).abs() < 1e-12);
    }

    #[test]
    fn routing_rbd_graph_matches_expression() {
        let (chain, platform, mapping) = setup();
        let expr = routing_sp_expr(&chain, &platform, &mapping);
        let graph = routing_rbd(&chain, &platform, &mapping);
        assert!(graph.is_acyclic());
        let exact_r = exact::factoring(&graph);
        assert!((exact_r - expr.reliability()).abs() < 1e-12);
    }

    #[test]
    fn general_rbd_structure_matches_figure4() {
        let (chain, platform, mapping) = setup();
        let rbd = general_rbd(&chain, &platform, &mapping);
        // 2 replicas + 3 replicas + 2*3 communications.
        assert_eq!(rbd.num_blocks(), 11);
        assert!(rbd.is_acyclic());
        assert_eq!(rbd.source_successors().len(), 2);
        assert_eq!(rbd.destination_predecessors().len(), 3);
        // 2 * 3 simple paths.
        assert_eq!(rbd.all_paths().len(), 6);
    }

    #[test]
    fn routing_model_is_conservative_wrt_general_rbd() {
        // Inserting routing operations adds an extra communication hop, so the
        // serial-parallel reliability is a (slightly pessimistic) lower bound
        // of the exact reliability of the direct diagram.
        let (chain, platform, mapping) = setup();
        let direct = exact::factoring(&general_rbd(&chain, &platform, &mapping));
        let routed = routing_sp_expr(&chain, &platform, &mapping).reliability();
        assert!(routed <= direct + 1e-12);
        // The overhead stays small for realistic failure rates (the paper
        // reports +3.88% on execution time and a negligible reliability gap).
        assert!(direct - routed < 0.05);
    }

    #[test]
    fn single_interval_mapping_has_no_routing_and_no_communication() {
        let chain = TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .identical_processors(2, 1.0, 0.001)
            .max_replication(2)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![MappedInterval::new(
                Interval { first: 0, last: 1 },
                vec![0, 1],
            )],
            &chain,
            &platform,
        )
        .unwrap();
        let expr = routing_sp_expr(&chain, &platform, &mapping);
        let direct = general_rbd(&chain, &platform, &mapping);
        assert_eq!(direct.num_blocks(), 2);
        let closed_form = reliability::mapping_reliability(&chain, &platform, &mapping);
        assert!((expr.reliability() - closed_form).abs() < 1e-15);
        assert!((exact::state_enumeration(&direct) - closed_form).abs() < 1e-15);
    }

    #[test]
    fn unreplicated_mapping_general_and_routing_models_agree() {
        // Without replication both models degenerate to a serial diagram with
        // the same blocks except the duplicated communication; with a
        // perfectly reliable network they coincide exactly.
        let chain = TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (5.0, 1.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .identical_processors(3, 1.0, 0.01)
            .link_failure_rate(0.0)
            .max_replication(1)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 0 }, vec![0]),
                MappedInterval::new(Interval { first: 1, last: 2 }, vec![1]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        let direct = exact::state_enumeration(&general_rbd(&chain, &platform, &mapping));
        let routed = routing_sp_expr(&chain, &platform, &mapping).reliability();
        assert!((direct - routed).abs() < 1e-12);
    }
}
