//! Exact reliability evaluation of a general RBD.
//!
//! Computing the reliability of an arbitrary RBD is exponential in the number
//! of blocks (Section 4 of the paper). Two exact methods are provided, both
//! intended for small diagrams (ground truth for tests and ablations):
//!
//! * [`state_enumeration`] sums the probability of every operational subset of
//!   blocks — `O(2^n)` operational checks;
//! * [`factoring`] uses pivotal (Shannon) decomposition on one block at a
//!   time, pruning as soon as the diagram becomes surely operational or
//!   surely failed — same worst case, usually much faster in practice.

use crate::{BlockId, Rbd};

/// Hard bound on the number of blocks accepted by the exact evaluators.
pub const MAX_EXACT_BLOCKS: usize = 30;

/// Exact reliability by enumeration of all `2^n` block states.
///
/// # Panics
///
/// Panics if the diagram has more than [`MAX_EXACT_BLOCKS`] blocks.
pub fn state_enumeration(rbd: &Rbd) -> f64 {
    let n = rbd.num_blocks();
    assert!(
        n <= MAX_EXACT_BLOCKS,
        "state enumeration limited to {MAX_EXACT_BLOCKS} blocks, diagram has {n}"
    );
    rpo_obs::counter!("rbd.exact_evaluations").inc();
    let mut reliability = 0.0;
    for state in 0u64..(1u64 << n) {
        let up = |b: BlockId| state & (1 << b) != 0;
        if rbd.is_operational(&up) {
            let mut p = 1.0;
            for b in 0..n {
                let r = rbd.block(b).reliability;
                p *= if up(b) { r } else { 1.0 - r };
            }
            reliability += p;
        }
    }
    reliability
}

/// Exact reliability by pivotal decomposition (factoring).
///
/// Conditioning on block `b`:
/// `R = r_b · R(diagram | b up) + (1 − r_b) · R(diagram | b down)`.
/// Blocks are processed in identifier order; recursion stops as soon as the
/// partially-decided diagram is surely operational (all remaining blocks down
/// would still leave an up path) or surely failed (all remaining blocks up
/// would still not connect source and destination).
///
/// # Panics
///
/// Panics if the diagram has more than [`MAX_EXACT_BLOCKS`] blocks.
pub fn factoring(rbd: &Rbd) -> f64 {
    let n = rbd.num_blocks();
    assert!(
        n <= MAX_EXACT_BLOCKS,
        "factoring limited to {MAX_EXACT_BLOCKS} blocks, diagram has {n}"
    );
    rpo_obs::counter!("rbd.exact_evaluations").inc();
    // decided[b]: None = undecided, Some(true/false) = forced up/down.
    let mut decided: Vec<Option<bool>> = vec![None; n];
    factor_rec(rbd, &mut decided, 0)
}

fn factor_rec(rbd: &Rbd, decided: &mut Vec<Option<bool>>, next: usize) -> f64 {
    // Pessimistic check: every undecided block down.
    let surely_up = rbd.is_operational(&|b| decided[b] == Some(true));
    if surely_up {
        return 1.0;
    }
    // Optimistic check: every undecided block up.
    let possibly_up = rbd.is_operational(&|b| decided[b] != Some(false));
    if !possibly_up {
        return 0.0;
    }
    debug_assert!(
        next < decided.len(),
        "undecided diagram must have an undecided block"
    );
    let r = rbd.block(next).reliability;
    decided[next] = Some(true);
    let up = factor_rec(rbd, decided, next + 1);
    decided[next] = Some(false);
    let down = factor_rec(rbd, decided, next + 1);
    decided[next] = None;
    r * up + (1.0 - r) * down
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Node, Rbd};

    fn series(reliabilities: &[f64]) -> Rbd {
        let mut rbd = Rbd::new();
        let ids: Vec<_> = reliabilities
            .iter()
            .map(|&r| rbd.add_block(Block::other(r, "b")))
            .collect();
        rbd.add_edge(Node::Source, Node::Block(ids[0]));
        for w in ids.windows(2) {
            rbd.add_edge(Node::Block(w[0]), Node::Block(w[1]));
        }
        rbd.add_edge(Node::Block(*ids.last().unwrap()), Node::Destination);
        rbd
    }

    fn parallel(reliabilities: &[f64]) -> Rbd {
        let mut rbd = Rbd::new();
        for &r in reliabilities {
            let id = rbd.add_block(Block::other(r, "b"));
            rbd.add_edge(Node::Source, Node::Block(id));
            rbd.add_edge(Node::Block(id), Node::Destination);
        }
        rbd
    }

    /// The classical 5-block bridge network, which is neither series nor
    /// parallel: blocks a, b feed from S; d, e reach D; c bridges both sides.
    fn bridge(r: [f64; 5]) -> Rbd {
        let mut rbd = Rbd::new();
        let a = rbd.add_block(Block::other(r[0], "a"));
        let b = rbd.add_block(Block::other(r[1], "b"));
        let c = rbd.add_block(Block::other(r[2], "c"));
        let d = rbd.add_block(Block::other(r[3], "d"));
        let e = rbd.add_block(Block::other(r[4], "e"));
        rbd.add_edge(Node::Source, Node::Block(a));
        rbd.add_edge(Node::Source, Node::Block(b));
        rbd.add_edge(Node::Block(a), Node::Block(d));
        rbd.add_edge(Node::Block(b), Node::Block(e));
        rbd.add_edge(Node::Block(a), Node::Block(c));
        rbd.add_edge(Node::Block(b), Node::Block(c));
        rbd.add_edge(Node::Block(c), Node::Block(d));
        rbd.add_edge(Node::Block(c), Node::Block(e));
        rbd.add_edge(Node::Block(d), Node::Destination);
        rbd.add_edge(Node::Block(e), Node::Destination);
        rbd
    }

    #[test]
    fn series_reliability_is_product() {
        let rbd = series(&[0.9, 0.8, 0.95]);
        let expected = 0.9 * 0.8 * 0.95;
        assert!((state_enumeration(&rbd) - expected).abs() < 1e-12);
        assert!((factoring(&rbd) - expected).abs() < 1e-12);
    }

    #[test]
    fn parallel_reliability_is_one_minus_product_of_failures() {
        let rbd = parallel(&[0.9, 0.8, 0.5]);
        let expected = 1.0 - 0.1 * 0.2 * 0.5;
        assert!((state_enumeration(&rbd) - expected).abs() < 1e-12);
        assert!((factoring(&rbd) - expected).abs() < 1e-12);
    }

    #[test]
    fn bridge_network_matches_known_closed_form() {
        // For the bridge with identical reliability p on every block, the
        // system reliability is 2p^2 + 2p^3 - 5p^4 + 2p^5.
        let p = 0.9f64;
        let rbd = bridge([p; 5]);
        let expected = 2.0 * p.powi(2) + 2.0 * p.powi(3) - 5.0 * p.powi(4) + 2.0 * p.powi(5);
        assert!((state_enumeration(&rbd) - expected).abs() < 1e-12);
        assert!((factoring(&rbd) - expected).abs() < 1e-12);
    }

    #[test]
    fn factoring_agrees_with_state_enumeration_on_heterogeneous_bridge() {
        let rbd = bridge([0.9, 0.75, 0.6, 0.85, 0.95]);
        let a = state_enumeration(&rbd);
        let b = factoring(&rbd);
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn perfect_and_broken_blocks() {
        let rbd = series(&[1.0, 1.0]);
        assert_eq!(state_enumeration(&rbd), 1.0);
        assert_eq!(factoring(&rbd), 1.0);
        let rbd = series(&[1.0, 0.0]);
        assert_eq!(state_enumeration(&rbd), 0.0);
        assert_eq!(factoring(&rbd), 0.0);
    }

    #[test]
    #[should_panic(expected = "state enumeration limited")]
    fn state_enumeration_rejects_large_diagrams() {
        let rbd = series(&vec![0.9; MAX_EXACT_BLOCKS + 1]);
        let _ = state_enumeration(&rbd);
    }
}
