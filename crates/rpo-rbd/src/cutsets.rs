//! Minimal cut sets and the serial cut-set approximation of Section 4.
//!
//! A *cut set* is a set of blocks whose removal disconnects the source from
//! the destination; it is *minimal* if no proper subset is a cut. The paper
//! notes that the reliability of a general RBD can be approximated by putting
//! all minimal cut sets in series, each cut set being the parallel composition
//! of its blocks — a lower bound on the true reliability that is exact for
//! series-parallel diagrams with distinct blocks per cut.

use crate::{BlockId, Rbd};

/// Enumerates all minimal cut sets of the diagram.
///
/// The implementation enumerates the minimal path sets first (every simple
/// source-destination path) and builds minimal cuts as minimal hitting sets,
/// by exploring subsets in increasing cardinality. Exponential in general;
/// intended for small diagrams, consistent with the paper's observation that
/// the number of minimal cuts itself can be exponential.
///
/// # Panics
///
/// Panics if the diagram has more than 30 blocks.
pub fn minimal_cut_sets(rbd: &Rbd) -> Vec<Vec<BlockId>> {
    let n = rbd.num_blocks();
    assert!(
        n <= 30,
        "minimal cut enumeration limited to 30 blocks, diagram has {n}"
    );
    let paths = rbd.all_paths();
    if paths.is_empty() {
        return Vec::new();
    }
    let path_masks: Vec<u64> = paths
        .iter()
        .map(|p| p.iter().fold(0u64, |m, &b| m | (1 << b)))
        .collect();

    let mut cuts: Vec<u64> = Vec::new();
    // Enumerate candidate subsets by increasing cardinality so that the first
    // time a cut is found it cannot have a smaller cut as a subset, and any
    // superset of an already-found cut is skipped.
    for size in 1..=n {
        let mut candidate: Vec<usize> = (0..size).collect();
        loop {
            let mask = candidate.iter().fold(0u64, |m, &b| m | (1 << b));
            let dominated = cuts.iter().any(|&c| c & !mask == 0);
            if !dominated && path_masks.iter().all(|&p| p & mask != 0) {
                cuts.push(mask);
            }
            // Next combination of `size` elements out of `n`.
            let mut i = size;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if candidate[i] != i + n - size {
                    candidate[i] += 1;
                    for j in i + 1..size {
                        candidate[j] = candidate[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    candidate.clear();
                    break;
                }
            }
            if candidate.is_empty() {
                break;
            }
        }
    }
    cuts.iter()
        .map(|&mask| (0..n).filter(|&b| mask & (1 << b) != 0).collect())
        .collect()
}

/// The serial cut-set approximation of the reliability (Section 4): the
/// product over minimal cut sets `C` of `1 − Π_{b ∈ C} (1 − r_b)`.
///
/// This is a lower bound on the exact reliability (by the Esary–Proschan
/// inequality), and coincides with it when the diagram is series-parallel and
/// no block appears in two cuts.
pub fn cutset_approximation(rbd: &Rbd) -> f64 {
    minimal_cut_sets(rbd)
        .iter()
        .map(|cut| {
            1.0 - cut
                .iter()
                .map(|&b| 1.0 - rbd.block(b).reliability)
                .product::<f64>()
        })
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, Block, Node, Rbd};

    fn series_parallel_example() -> Rbd {
        // Two parallel replicas followed by a single block, in series.
        let mut rbd = Rbd::new();
        let a = rbd.add_block(Block::other(0.9, "a"));
        let b = rbd.add_block(Block::other(0.8, "b"));
        let c = rbd.add_block(Block::other(0.95, "c"));
        rbd.add_edge(Node::Source, Node::Block(a));
        rbd.add_edge(Node::Source, Node::Block(b));
        rbd.add_edge(Node::Block(a), Node::Block(c));
        rbd.add_edge(Node::Block(b), Node::Block(c));
        rbd.add_edge(Node::Block(c), Node::Destination);
        rbd
    }

    fn bridge() -> Rbd {
        let mut rbd = Rbd::new();
        let a = rbd.add_block(Block::other(0.9, "a"));
        let b = rbd.add_block(Block::other(0.9, "b"));
        let c = rbd.add_block(Block::other(0.9, "c"));
        let d = rbd.add_block(Block::other(0.9, "d"));
        let e = rbd.add_block(Block::other(0.9, "e"));
        rbd.add_edge(Node::Source, Node::Block(a));
        rbd.add_edge(Node::Source, Node::Block(b));
        rbd.add_edge(Node::Block(a), Node::Block(d));
        rbd.add_edge(Node::Block(b), Node::Block(e));
        rbd.add_edge(Node::Block(a), Node::Block(c));
        rbd.add_edge(Node::Block(b), Node::Block(c));
        rbd.add_edge(Node::Block(c), Node::Block(d));
        rbd.add_edge(Node::Block(c), Node::Block(e));
        rbd.add_edge(Node::Block(d), Node::Destination);
        rbd.add_edge(Node::Block(e), Node::Destination);
        rbd
    }

    #[test]
    fn cuts_of_series_parallel_diagram() {
        let rbd = series_parallel_example();
        let mut cuts = minimal_cut_sets(&rbd);
        cuts.iter_mut().for_each(|c| c.sort());
        cuts.sort();
        // {a, b} (both replicas down) and {c}.
        assert_eq!(cuts, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn approximation_exact_on_disjoint_series_parallel() {
        let rbd = series_parallel_example();
        let exact_r = exact::state_enumeration(&rbd);
        let approx = cutset_approximation(&rbd);
        assert!((exact_r - approx).abs() < 1e-12);
    }

    #[test]
    fn cuts_of_bridge_network() {
        let rbd = bridge();
        let mut cuts = minimal_cut_sets(&rbd);
        cuts.iter_mut().for_each(|c| c.sort());
        cuts.sort();
        // Classical result: {a,b}, {d,e}, {a,c,e}, {b,c,d}.
        assert_eq!(
            cuts,
            vec![vec![0, 1], vec![0, 2, 4], vec![1, 2, 3], vec![3, 4]]
        );
    }

    #[test]
    fn approximation_is_a_lower_bound_on_bridge() {
        let rbd = bridge();
        let exact_r = exact::state_enumeration(&rbd);
        let approx = cutset_approximation(&rbd);
        assert!(approx <= exact_r + 1e-12);
        // And it is reasonably tight for reliable blocks.
        assert!(exact_r - approx < 1e-2);
    }

    #[test]
    fn diagram_without_path_has_no_cut_and_zero_reliability() {
        let mut rbd = Rbd::new();
        let a = rbd.add_block(Block::other(0.9, "a"));
        rbd.add_edge(Node::Source, Node::Block(a));
        // No arc to the destination.
        assert!(minimal_cut_sets(&rbd).is_empty());
        assert_eq!(exact::state_enumeration(&rbd), 0.0);
    }
}
