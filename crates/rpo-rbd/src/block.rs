//! Blocks of a reliability block diagram.

use serde::{Deserialize, Serialize};

/// Identifier of a block within an [`crate::Rbd`] (0-based insertion order).
pub type BlockId = usize;

/// What a block of the diagram represents, for labelling and debugging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockKind {
    /// An interval replica executed on a processor (`I_j / P_u`).
    IntervalOnProcessor {
        /// Interval index within the mapping.
        interval: usize,
        /// Processor index within the platform.
        processor: usize,
    },
    /// A data dependency transmitted on a point-to-point link (`o_j / L_uv`).
    CommunicationOnLink {
        /// Interval index whose output is transmitted.
        interval: usize,
        /// Sending processor.
        from: usize,
        /// Receiving processor.
        to: usize,
    },
    /// A routing operation (zero duration, reliability 1).
    Routing {
        /// Interval index after which the routing operation is inserted.
        after_interval: usize,
        /// Processor hosting the routing operation.
        processor: usize,
    },
    /// Any other block (used by generic tests and ad-hoc diagrams).
    Other(String),
}

/// A block of the diagram: an element of the system together with the
/// probability that it is operational.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Probability that the block is operational, in `[0, 1]`.
    pub reliability: f64,
    /// What the block represents.
    pub kind: BlockKind,
}

impl Block {
    /// Creates a block with an arbitrary label.
    pub fn other(reliability: f64, label: impl Into<String>) -> Self {
        Block {
            reliability,
            kind: BlockKind::Other(label.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_block_stores_label_and_reliability() {
        let b = Block::other(0.9, "pump");
        assert_eq!(b.reliability, 0.9);
        assert_eq!(b.kind, BlockKind::Other("pump".to_string()));
    }
}
