//! JSON problem descriptions for the `solve` command-line tool.
//!
//! A problem file describes a chain, a platform and the real-time bounds;
//! the solver answer lists, for each requested method, the mapping found and
//! its evaluation. This is the "downstream user" entry point: no Rust code is
//! needed to use the library on a concrete system.

use rpo_algorithms::{exact, run_heuristic_with_oracle, HeuristicConfig, IntervalHeuristic};
use rpo_model::{IntervalOracle, Mapping, Platform, Processor, ProcessorId, TaskChain};
use serde::{Deserialize, Serialize};

/// A task of the input problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Amount of work `w_i`.
    pub work: f64,
    /// Output data size `o_i` (defaults to 0).
    #[serde(default)]
    pub output_size: f64,
}

/// A processor of the input problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// Speed `s_u`.
    pub speed: f64,
    /// Failure rate `λ_u` per time unit.
    pub failure_rate: f64,
}

/// The platform of the input problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// The processors.
    pub processors: Vec<ProcessorSpec>,
    /// Link bandwidth `b` (defaults to 1).
    #[serde(default = "default_one")]
    pub bandwidth: f64,
    /// Link failure rate `λ_ℓ` (defaults to 0).
    #[serde(default)]
    pub link_failure_rate: f64,
    /// Replication bound `K` (defaults to 1).
    #[serde(default = "default_one_usize")]
    pub max_replication: usize,
}

fn default_one() -> f64 {
    1.0
}
fn default_one_usize() -> usize {
    1
}

/// A complete problem description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// The task chain, in pipeline order.
    pub tasks: Vec<TaskSpec>,
    /// The target platform.
    pub platform: PlatformSpec,
    /// Worst-case period bound (absent = unbounded).
    #[serde(default)]
    pub period_bound: Option<f64>,
    /// Worst-case latency bound (absent = unbounded).
    #[serde(default)]
    pub latency_bound: Option<f64>,
}

impl ProblemSpec {
    /// Parses a problem from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the JSON parsing error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid problem JSON: {e}"))
    }

    /// Builds the model objects from the specification.
    ///
    /// # Errors
    ///
    /// Returns the model validation error message.
    pub fn build(&self) -> Result<(TaskChain, Platform), String> {
        let chain = TaskChain::from_pairs(
            &self
                .tasks
                .iter()
                .map(|t| (t.work, t.output_size))
                .collect::<Vec<_>>(),
        )
        .map_err(|e| format!("invalid chain: {e}"))?;
        let platform = Platform::new(
            self.platform
                .processors
                .iter()
                .map(|p| Processor::new(p.speed, p.failure_rate))
                .collect(),
            self.platform.bandwidth,
            self.platform.link_failure_rate,
            self.platform.max_replication,
        )
        .map_err(|e| format!("invalid platform: {e}"))?;
        Ok((chain, platform))
    }
}

/// One solver answer within a [`SolveReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodReport {
    /// Method name (`"Heur-L"`, `"Heur-P"`, `"exact"`).
    pub method: String,
    /// Whether a feasible mapping was found.
    pub feasible: bool,
    /// The intervals of the mapping, as `(first_task, last_task, processors)`.
    pub intervals: Vec<(usize, usize, Vec<ProcessorId>)>,
    /// Reliability of the mapping (0 when infeasible).
    pub reliability: f64,
    /// Failure probability of the mapping (1 when infeasible).
    pub failure_probability: f64,
    /// Worst-case period of the mapping.
    pub worst_case_period: f64,
    /// Worst-case latency of the mapping.
    pub worst_case_latency: f64,
}

/// The full solver answer for one problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveReport {
    /// Number of tasks of the problem.
    pub num_tasks: usize,
    /// Number of processors of the platform.
    pub num_processors: usize,
    /// Whether the platform is homogeneous (enables the exact solver).
    pub homogeneous_platform: bool,
    /// Per-method answers.
    pub methods: Vec<MethodReport>,
}

fn method_report(name: &str, oracle: &IntervalOracle, mapping: Option<&Mapping>) -> MethodReport {
    match mapping {
        Some(mapping) => {
            let eval = oracle.evaluate(mapping);
            MethodReport {
                method: name.to_string(),
                feasible: true,
                intervals: mapping
                    .intervals()
                    .iter()
                    .map(|mi| (mi.interval.first, mi.interval.last, mi.processors.clone()))
                    .collect(),
                reliability: eval.reliability,
                failure_probability: eval.failure_probability(),
                worst_case_period: eval.worst_case_period,
                worst_case_latency: eval.worst_case_latency,
            }
        }
        None => MethodReport {
            method: name.to_string(),
            feasible: false,
            intervals: Vec::new(),
            reliability: 0.0,
            failure_probability: 1.0,
            worst_case_period: f64::INFINITY,
            worst_case_latency: f64::INFINITY,
        },
    }
}

/// Solves a problem with both heuristics and, on homogeneous platforms small
/// enough for it, the exact solver.
pub fn solve(spec: &ProblemSpec) -> Result<SolveReport, String> {
    let (chain, platform) = spec.build()?;
    let period = spec.period_bound.unwrap_or(f64::INFINITY);
    let latency = spec.latency_bound.unwrap_or(f64::INFINITY);
    // One oracle serves every method and every report evaluation.
    let oracle = IntervalOracle::new(&chain, &platform);

    let mut methods = Vec::new();
    for (name, heuristic) in [
        ("Heur-L", IntervalHeuristic::MinLatency),
        ("Heur-P", IntervalHeuristic::MinPeriod),
    ] {
        let solution = run_heuristic_with_oracle(
            &oracle,
            &chain,
            &platform,
            &HeuristicConfig {
                interval_heuristic: heuristic,
                period_bound: period,
                latency_bound: latency,
            },
        )
        .ok();
        methods.push(method_report(
            name,
            &oracle,
            solution.as_ref().map(|s| &s.mapping),
        ));
    }

    let homogeneous = platform.is_homogeneous();
    if homogeneous && chain.len() <= exact::exhaustive::MAX_EXHAUSTIVE_TASKS {
        let solution =
            exact::optimal_homogeneous_with_oracle(&oracle, &chain, &platform, period, latency)
                .ok();
        methods.push(method_report(
            "exact",
            &oracle,
            solution.as_ref().map(|s| &s.mapping),
        ));
    }

    Ok(SolveReport {
        num_tasks: chain.len(),
        num_processors: platform.num_processors(),
        homogeneous_platform: homogeneous,
        methods,
    })
}

/// Serializes a report as pretty JSON.
pub fn report_to_json(report: &SolveReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialization cannot fail")
}

/// One Pareto point of a [`PortfolioReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioPoint {
    /// Backend that produced the mapping.
    pub backend: String,
    /// Reliability of the mapping.
    pub reliability: f64,
    /// Failure probability of the mapping.
    pub failure_probability: f64,
    /// Worst-case period of the mapping.
    pub worst_case_period: f64,
    /// Worst-case latency of the mapping.
    pub worst_case_latency: f64,
    /// The intervals of the mapping, as `(first_task, last_task, processors)`.
    pub intervals: Vec<(usize, usize, Vec<ProcessorId>)>,
}

/// The answer of the solver-portfolio race for one problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioReport {
    /// Number of tasks of the problem.
    pub num_tasks: usize,
    /// Number of processors of the platform.
    pub num_processors: usize,
    /// Whether the platform is homogeneous.
    pub homogeneous_platform: bool,
    /// Whether any feasible mapping was found.
    pub feasible: bool,
    /// Backends that ran to completion.
    pub backends_run: Vec<String>,
    /// Backends skipped, with the reason.
    pub backends_skipped: Vec<(String, String)>,
    /// The tri-criteria Pareto front, most reliable point first.
    pub pareto_front: Vec<PortfolioPoint>,
}

/// Solves a problem by racing the whole solver portfolio in parallel and
/// aggregating every feasible candidate into a Pareto front.
///
/// # Errors
///
/// Returns the model validation error message for malformed specifications.
pub fn solve_portfolio(spec: &ProblemSpec) -> Result<PortfolioReport, String> {
    let (chain, platform) = spec.build()?;
    let period = spec.period_bound.unwrap_or(f64::INFINITY);
    let latency = spec.latency_bound.unwrap_or(f64::INFINITY);
    let instance = rpo_portfolio::ProblemInstance::new(chain, platform, period, latency)?;

    let engine = rpo_portfolio::PortfolioEngine::default();
    let outcome = engine.solve(&instance);

    let mut backends_run = Vec::new();
    let mut backends_skipped = Vec::new();
    for run in &outcome.runs {
        match &run.status {
            rpo_portfolio::RunStatus::Completed => backends_run.push(run.backend.to_string()),
            rpo_portfolio::RunStatus::Skipped(reason) => {
                backends_skipped.push((run.backend.to_string(), reason.to_string()));
            }
            other => backends_skipped.push((run.backend.to_string(), format!("{other:?}"))),
        }
    }

    let pareto_front = outcome
        .front
        .points()
        .into_iter()
        .map(|point| PortfolioPoint {
            backend: point.backend.to_string(),
            reliability: point.evaluation.reliability,
            failure_probability: 1.0 - point.evaluation.reliability,
            worst_case_period: point.evaluation.worst_case_period,
            worst_case_latency: point.evaluation.worst_case_latency,
            intervals: point
                .mapping
                .intervals()
                .iter()
                .map(|mi| (mi.interval.first, mi.interval.last, mi.processors.clone()))
                .collect(),
        })
        .collect();

    Ok(PortfolioReport {
        num_tasks: instance.chain.len(),
        num_processors: instance.platform.num_processors(),
        homogeneous_platform: instance.platform.is_homogeneous(),
        feasible: outcome.is_feasible(),
        backends_run,
        backends_skipped,
        pareto_front,
    })
}

/// Serializes a portfolio report as pretty JSON.
pub fn portfolio_report_to_json(report: &PortfolioReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_json() -> &'static str {
        r#"{
            "tasks": [
                {"work": 30, "output_size": 2},
                {"work": 10, "output_size": 8},
                {"work": 25, "output_size": 1},
                {"work": 40}
            ],
            "platform": {
                "processors": [
                    {"speed": 1, "failure_rate": 1e-4},
                    {"speed": 1, "failure_rate": 1e-4},
                    {"speed": 1, "failure_rate": 1e-4},
                    {"speed": 1, "failure_rate": 1e-4},
                    {"speed": 1, "failure_rate": 1e-4}
                ],
                "bandwidth": 1,
                "link_failure_rate": 1e-5,
                "max_replication": 2
            },
            "period_bound": 70,
            "latency_bound": 130
        }"#
    }

    #[test]
    fn parse_build_and_solve_round_trip() {
        let spec = ProblemSpec::from_json(example_json()).unwrap();
        assert_eq!(spec.tasks.len(), 4);
        assert_eq!(spec.tasks[3].output_size, 0.0); // defaulted
        let (chain, platform) = spec.build().unwrap();
        assert_eq!(chain.len(), 4);
        assert_eq!(platform.max_replication(), 2);

        let report = solve(&spec).unwrap();
        assert_eq!(report.num_tasks, 4);
        assert!(report.homogeneous_platform);
        assert_eq!(report.methods.len(), 3); // Heur-L, Heur-P, exact
        let exact = report.methods.iter().find(|m| m.method == "exact").unwrap();
        assert!(exact.feasible);
        assert!(exact.worst_case_period <= 70.0 + 1e-9);
        assert!(exact.worst_case_latency <= 130.0 + 1e-9);
        // No heuristic beats the exact reliability.
        for method in &report.methods {
            if method.feasible {
                assert!(method.reliability <= exact.reliability + 1e-12);
            }
        }
        // The JSON rendering contains the method names.
        let json = report_to_json(&report);
        assert!(json.contains("Heur-P") && json.contains("exact"));
        // And parses back to the same report.
        let parsed: SolveReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn missing_bounds_default_to_unbounded() {
        let json = r#"{
            "tasks": [{"work": 5}],
            "platform": {"processors": [{"speed": 1, "failure_rate": 0}]}
        }"#;
        let spec = ProblemSpec::from_json(json).unwrap();
        assert_eq!(spec.period_bound, None);
        let report = solve(&spec).unwrap();
        assert!(report.methods.iter().all(|m| m.feasible));
    }

    #[test]
    fn heterogeneous_platform_skips_the_exact_solver() {
        let json = r#"{
            "tasks": [{"work": 5, "output_size": 1}, {"work": 7}],
            "platform": {
                "processors": [
                    {"speed": 1, "failure_rate": 1e-5},
                    {"speed": 2, "failure_rate": 1e-5}
                ],
                "max_replication": 2
            }
        }"#;
        let report = solve(&ProblemSpec::from_json(json).unwrap()).unwrap();
        assert!(!report.homogeneous_platform);
        assert_eq!(report.methods.len(), 2);
    }

    #[test]
    fn invalid_inputs_produce_errors() {
        assert!(ProblemSpec::from_json("not json").is_err());
        let bad_chain = r#"{
            "tasks": [{"work": -5}],
            "platform": {"processors": [{"speed": 1, "failure_rate": 0}]}
        }"#;
        let spec = ProblemSpec::from_json(bad_chain).unwrap();
        assert!(spec.build().unwrap_err().contains("invalid chain"));
        let bad_platform = r#"{
            "tasks": [{"work": 5}],
            "platform": {"processors": []}
        }"#;
        let spec = ProblemSpec::from_json(bad_platform).unwrap();
        assert!(spec.build().unwrap_err().contains("invalid platform"));
    }

    #[test]
    fn portfolio_solve_reports_the_front_and_the_backend_census() {
        let spec = ProblemSpec::from_json(example_json()).unwrap();
        let report = solve_portfolio(&spec).unwrap();
        assert!(report.feasible);
        assert!(report.homogeneous_platform);
        assert!(
            report.backends_run.len() >= 5,
            "run: {:?}",
            report.backends_run
        );
        assert!(report
            .backends_skipped
            .iter()
            .any(|(backend, _)| backend == "Het-Sweep"));
        assert!(!report.pareto_front.is_empty());
        // Points are sorted by decreasing reliability and respect the bounds.
        for pair in report.pareto_front.windows(2) {
            assert!(pair[0].reliability >= pair[1].reliability);
        }
        for point in &report.pareto_front {
            assert!(point.worst_case_period <= 70.0 + 1e-9);
            assert!(point.worst_case_latency <= 130.0 + 1e-9);
        }
        // The portfolio's best point matches the classic exact answer.
        let classic = solve(&spec).unwrap();
        let exact = classic
            .methods
            .iter()
            .find(|m| m.method == "exact")
            .unwrap();
        assert!((report.pareto_front[0].reliability - exact.reliability).abs() < 1e-12);
        // The JSON rendering round-trips.
        let json = portfolio_report_to_json(&report);
        let parsed: PortfolioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn infeasible_bounds_reported_per_method() {
        let json = r#"{
            "tasks": [{"work": 100, "output_size": 1}, {"work": 100}],
            "platform": {
                "processors": [
                    {"speed": 1, "failure_rate": 1e-5},
                    {"speed": 1, "failure_rate": 1e-5}
                ],
                "max_replication": 2
            },
            "period_bound": 10
        }"#;
        let report = solve(&ProblemSpec::from_json(json).unwrap()).unwrap();
        assert!(report.methods.iter().all(|m| !m.feasible));
        assert!(report.methods.iter().all(|m| m.failure_probability == 1.0));
    }
}
