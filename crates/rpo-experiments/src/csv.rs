//! CSV export of figure results.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::series::FigureResult;

/// Renders a figure as CSV text: one `x` column followed by one column per
/// series. Undefined values (NaN) are rendered as empty cells.
pub fn to_csv(figure: &FigureResult) -> String {
    let mut out = String::new();
    out.push('x');
    for series in &figure.series {
        out.push(',');
        out.push_str(&series.label);
    }
    out.push('\n');

    let xs = figure.x_values();
    for (row, &x) in xs.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for series in &figure.series {
            out.push(',');
            if let Some(&(_, y)) = series.points.get(row) {
                if !y.is_nan() {
                    out.push_str(&format!("{y}"));
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Writes the figure to `<dir>/<id>.csv` and returns the path.
///
/// # Errors
///
/// Propagates any I/O error (directory creation or file write).
pub fn write_csv(figure: &FigureResult, dir: &Path) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", figure.id));
    let mut file = fs::File::create(&path)?;
    file.write_all(to_csv(figure).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn figure() -> FigureResult {
        FigureResult {
            id: "fig42".to_string(),
            title: "t".to_string(),
            x_label: "x".to_string(),
            y_label: "y".to_string(),
            num_instances: 2,
            series: vec![
                Series::new("A", vec![(1.0, 2.0), (2.0, 3.0)]),
                Series::new("B", vec![(1.0, f64::NAN), (2.0, 0.5)]),
            ],
        }
    }

    #[test]
    fn csv_layout_and_nan_handling() {
        let csv = to_csv(&figure());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,A,B");
        assert_eq!(lines[1], "1,2,");
        assert_eq!(lines[2], "2,3,0.5");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn write_creates_the_file() {
        let dir = std::env::temp_dir().join(format!("rpo-csv-test-{}", std::process::id()));
        let path = write_csv(&figure(), &dir).unwrap();
        assert!(path.ends_with("fig42.csv"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, to_csv(&figure()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
