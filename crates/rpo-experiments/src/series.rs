//! Plain data types describing a figure: labelled series of `(x, y)` points.

use serde::{Deserialize, Serialize};

/// One labelled curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Label shown in the legend (e.g. `"ILP"`, `"Heur-P"`, `"Heur-L_HET"`).
    pub label: String,
    /// `(x, y)` points; `y` may be NaN where the value is undefined (e.g. the
    /// average failure probability when no instance was solved).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y values only.
    pub fn ys(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, y)| y)
    }
}

/// The full reproduction of one paper figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Machine-friendly identifier (`"fig06"` … `"fig15"`).
    pub id: String,
    /// Human-readable title (mirrors the paper's caption).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Number of instances behind each point.
    pub num_instances: usize,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// The common x values of the figure (taken from the first series).
    pub fn x_values(&self) -> Vec<f64> {
        self.series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default()
    }

    /// Looks a series up by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> FigureResult {
        FigureResult {
            id: "fig99".to_string(),
            title: "test".to_string(),
            x_label: "x".to_string(),
            y_label: "y".to_string(),
            num_instances: 3,
            series: vec![
                Series::new("A", vec![(1.0, 10.0), (2.0, 20.0)]),
                Series::new("B", vec![(1.0, 5.0), (2.0, f64::NAN)]),
            ],
        }
    }

    #[test]
    fn x_values_come_from_the_first_series() {
        assert_eq!(figure().x_values(), vec![1.0, 2.0]);
        let empty = FigureResult {
            series: vec![],
            ..figure()
        };
        assert!(empty.x_values().is_empty());
    }

    #[test]
    fn lookup_by_label() {
        let f = figure();
        assert_eq!(f.series_by_label("A").unwrap().points[1].1, 20.0);
        assert!(f.series_by_label("C").is_none());
    }

    #[test]
    fn ys_iterator() {
        let f = figure();
        let ys: Vec<f64> = f.series[0].ys().collect();
        assert_eq!(ys, vec![10.0, 20.0]);
    }
}
