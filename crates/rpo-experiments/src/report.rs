//! Console rendering of figure results.

use crate::series::FigureResult;

/// Renders a figure as a fixed-width console table.
pub fn to_table(figure: &FigureResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} — {} ({} instances)\n",
        figure.id, figure.title, figure.num_instances
    ));
    out.push_str(&format!("{:>12}", figure.x_label));
    for series in &figure.series {
        out.push_str(&format!("{:>14}", series.label));
    }
    out.push('\n');

    let xs = figure.x_values();
    for (row, &x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>12.1}"));
        for series in &figure.series {
            match series.points.get(row) {
                Some(&(_, y)) if !y.is_nan() => {
                    if y.fract() == 0.0 && y.abs() < 1e6 && figure.y_label.contains("Number") {
                        out.push_str(&format!("{y:>14.0}"));
                    } else {
                        out.push_str(&format!("{y:>14.3e}"));
                    }
                }
                _ => out.push_str(&format!("{:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Prints the table to standard output.
pub fn print_table(figure: &FigureResult) {
    print!("{}", to_table(figure));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    #[test]
    fn table_contains_labels_values_and_placeholders() {
        let figure = FigureResult {
            id: "fig06".to_string(),
            title: "Number of solutions".to_string(),
            x_label: "Bound on period".to_string(),
            y_label: "Number of solutions".to_string(),
            num_instances: 10,
            series: vec![
                Series::new("ILP", vec![(50.0, 7.0), (100.0, 10.0)]),
                Series::new("Heur-P", vec![(50.0, f64::NAN), (100.0, 9.0)]),
            ],
        };
        let table = to_table(&figure);
        assert!(table.contains("fig06"));
        assert!(table.contains("ILP"));
        assert!(table.contains("Heur-P"));
        assert!(table.contains('7'));
        assert!(table.contains('-'));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn failure_view_uses_scientific_notation() {
        let figure = FigureResult {
            id: "fig07".to_string(),
            title: "Average failure rate".to_string(),
            x_label: "Bound on period".to_string(),
            y_label: "Average failure probability".to_string(),
            num_instances: 10,
            series: vec![Series::new("ILP", vec![(50.0, 1.25e-7)])],
        };
        let table = to_table(&figure);
        assert!(table.contains("e-7") || table.contains("E-7"));
    }
}
