//! Experiment harness reproducing the evaluation of Section 8 of the paper
//! (Figures 6–15).
//!
//! The paper's evaluation generates 100 random instances (15 tasks, 10
//! processors, `K = 3`) and, for a sweep of period/latency bounds, reports
//! for each method — the ILP-computed optimum, Heur-L, Heur-P — how many
//! instances admit a feasible mapping and the average failure probability of
//! the mappings found. Figures 6–11 use homogeneous platforms; Figures 12–15
//! compare heuristics on heterogeneous platforms against a speed-5
//! homogeneous platform.
//!
//! * [`experiments`] — the five underlying experiments (each produces the data
//!   of two figures: a solution-count view and an average-failure view);
//! * [`figures`] — the per-figure entry points ([`figures::run_figure`],
//!   [`figures::run_all`]);
//! * [`series`] — plain data types for figure series;
//! * [`csv`] / [`report`] — CSV files and console tables.
//!
//! The `reproduce` binary drives everything:
//!
//! ```text
//! reproduce --all --instances 100 --out results/
//! reproduce --figure 6
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod experiments;
pub mod figures;
pub mod problem_io;
pub mod report;
pub mod series;

pub use experiments::{run_het_dp_sweep, ExperimentData, MethodCurve, SweepOptions};
pub use figures::{run_all, run_figure, run_het_dp_figures, FigureId};
pub use series::{FigureResult, Series};
