//! Per-figure entry points: every figure of the paper's evaluation section is
//! one view (solution counts or average failure probability) of one of the
//! five experiments of [`crate::experiments`].

use serde::{Deserialize, Serialize};

use crate::experiments::{ExperimentData, ExperimentSpec, SweepOptions};
use crate::series::{FigureResult, Series};

/// The figures of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FigureId {
    /// Number of solutions for `L = 750` on homogeneous platforms.
    Fig6,
    /// Average failure probability for `L = 750` on homogeneous platforms.
    Fig7,
    /// Number of solutions for `P = 250` on homogeneous platforms.
    Fig8,
    /// Average failure probability for `P = 250` on homogeneous platforms.
    Fig9,
    /// Number of solutions for `L = 3P` on homogeneous platforms.
    Fig10,
    /// Average failure probability for `L = 3P` on homogeneous platforms.
    Fig11,
    /// Number of solutions for `L = 150`, homogeneous vs heterogeneous.
    Fig12,
    /// Average failure probability for `L = 150`, homogeneous vs heterogeneous.
    Fig13,
    /// Number of solutions for `P = 50`, homogeneous vs heterogeneous.
    Fig14,
    /// Average failure probability for `P = 50`, homogeneous vs heterogeneous.
    Fig15,
}

/// Which view of the experiment data a figure shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum View {
    SolutionCount,
    AverageFailure,
}

impl FigureId {
    /// Every figure, in paper order.
    pub fn all() -> Vec<FigureId> {
        use FigureId::*;
        vec![
            Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Fig14, Fig15,
        ]
    }

    /// Parses a figure number (6–15).
    pub fn from_number(number: u32) -> Option<FigureId> {
        use FigureId::*;
        match number {
            6 => Some(Fig6),
            7 => Some(Fig7),
            8 => Some(Fig8),
            9 => Some(Fig9),
            10 => Some(Fig10),
            11 => Some(Fig11),
            12 => Some(Fig12),
            13 => Some(Fig13),
            14 => Some(Fig14),
            15 => Some(Fig15),
            _ => None,
        }
    }

    /// The paper figure number (6–15).
    pub fn number(&self) -> u32 {
        use FigureId::*;
        match self {
            Fig6 => 6,
            Fig7 => 7,
            Fig8 => 8,
            Fig9 => 9,
            Fig10 => 10,
            Fig11 => 11,
            Fig12 => 12,
            Fig13 => 13,
            Fig14 => 14,
            Fig15 => 15,
        }
    }

    /// Machine-friendly identifier (`"fig06"` … `"fig15"`).
    pub fn id(&self) -> String {
        format!("fig{:02}", self.number())
    }

    /// Caption of the figure, mirroring the paper.
    pub fn title(&self) -> &'static str {
        use FigureId::*;
        match self {
            Fig6 => "Number of solutions for L = 750 on homogeneous platforms",
            Fig7 => "Average failure rate for L = 750 on homogeneous platforms",
            Fig8 => "Number of solutions for P = 250 on homogeneous platforms",
            Fig9 => "Average failure rate for P = 250 on homogeneous platforms",
            Fig10 => "Number of solutions for L = 3P on homogeneous platforms",
            Fig11 => "Average failure rate for L = 3P on homogeneous platforms",
            Fig12 => "Number of solutions for L = 150 on homogeneous and heterogeneous platforms",
            Fig13 => "Average failure rate for L = 150 on homogeneous and heterogeneous platforms",
            Fig14 => "Number of solutions for P = 50 on homogeneous and heterogeneous platforms",
            Fig15 => "Average failure rate for P = 50 on homogeneous and heterogeneous platforms",
        }
    }

    /// The experiment providing this figure's data.
    fn spec(&self) -> ExperimentSpec {
        use FigureId::*;
        match self {
            Fig6 | Fig7 => ExperimentSpec::homogeneous_period_sweep(),
            Fig8 | Fig9 => ExperimentSpec::homogeneous_latency_sweep(),
            Fig10 | Fig11 => ExperimentSpec::homogeneous_proportional_sweep(),
            Fig12 | Fig13 => ExperimentSpec::heterogeneous_period_sweep(),
            Fig14 | Fig15 => ExperimentSpec::heterogeneous_latency_sweep(),
        }
    }

    fn view(&self) -> View {
        use FigureId::*;
        match self {
            Fig6 | Fig8 | Fig10 | Fig12 | Fig14 => View::SolutionCount,
            Fig7 | Fig9 | Fig11 | Fig13 | Fig15 => View::AverageFailure,
        }
    }

    /// The figure sharing the same experiment (count ↔ failure view).
    pub fn sibling(&self) -> FigureId {
        use FigureId::*;
        match self {
            Fig6 => Fig7,
            Fig7 => Fig6,
            Fig8 => Fig9,
            Fig9 => Fig8,
            Fig10 => Fig11,
            Fig11 => Fig10,
            Fig12 => Fig13,
            Fig13 => Fig12,
            Fig14 => Fig15,
            Fig15 => Fig14,
        }
    }
}

/// Extracts one figure from its experiment data.
fn extract(id: FigureId, data: &ExperimentData) -> FigureResult {
    let x_label = if id.spec().rule.sweeps_period() {
        "Bound on period"
    } else {
        "Bound on latency"
    };
    let (y_label, series): (&str, Vec<Series>) = match id.view() {
        View::SolutionCount => (
            "Number of solutions",
            data.curves
                .iter()
                .map(|curve| {
                    Series::new(
                        curve.label.clone(),
                        data.x_values
                            .iter()
                            .zip(&curve.solved)
                            .map(|(&x, &count)| (x, count as f64))
                            .collect(),
                    )
                })
                .collect(),
        ),
        View::AverageFailure => (
            "Average failure probability",
            data.curves
                .iter()
                .map(|curve| {
                    Series::new(
                        curve.label.clone(),
                        data.x_values
                            .iter()
                            .zip(&curve.avg_failure)
                            .map(|(&x, &failure)| (x, failure))
                            .collect(),
                    )
                })
                .collect(),
        ),
    };
    FigureResult {
        id: id.id(),
        title: id.title().to_string(),
        x_label: x_label.to_string(),
        y_label: y_label.to_string(),
        num_instances: data.num_instances,
        series,
    }
}

/// Runs the experiment behind `id` and returns that single figure.
pub fn run_figure(id: FigureId, options: &SweepOptions) -> FigureResult {
    let data = id.spec().run(options);
    extract(id, &data)
}

/// The class-structured heterogeneous sweep beyond the paper's figures: the
/// exact class-level DP (`algo_het`) against the Section 7.2 greedy
/// pipeline, both views of one run — solution counts (`fig_het_count`) and
/// average failure probability (`fig_het_failure`).
pub fn run_het_dp_figures(options: &SweepOptions) -> Vec<FigureResult> {
    let data = crate::experiments::run_het_dp_sweep(options);
    let count_series = data
        .curves
        .iter()
        .map(|curve| {
            Series::new(
                curve.label.clone(),
                data.x_values
                    .iter()
                    .zip(&curve.solved)
                    .map(|(&x, &count)| (x, count as f64))
                    .collect(),
            )
        })
        .collect();
    let failure_series = data
        .curves
        .iter()
        .map(|curve| {
            Series::new(
                curve.label.clone(),
                data.x_values
                    .iter()
                    .zip(&curve.avg_failure)
                    .map(|(&x, &failure)| (x, failure))
                    .collect(),
            )
        })
        .collect();
    vec![
        FigureResult {
            id: "fig_het_count".to_string(),
            title: "Number of solutions: class-level DP vs greedy on 3-class heterogeneous \
                    platforms"
                .to_string(),
            x_label: "Bound on period".to_string(),
            y_label: "Number of solutions".to_string(),
            num_instances: data.num_instances,
            series: count_series,
        },
        FigureResult {
            id: "fig_het_failure".to_string(),
            title: "Average failure rate: class-level DP vs greedy on 3-class heterogeneous \
                    platforms"
                .to_string(),
            x_label: "Bound on period".to_string(),
            y_label: "Average failure probability".to_string(),
            num_instances: data.num_instances,
            series: failure_series,
        },
    ]
}

/// The latency-aware class-structured sweep beyond the paper's figures: the
/// exact latency DP (`algo_het_lat`) against Heur-L and Heur-P under both
/// real-time bounds over the Figure 14/15 latency range — both views of one
/// run (`fig_het_lat_count` / `fig_het_lat_failure`).
pub fn run_het_lat_figures(options: &SweepOptions) -> Vec<FigureResult> {
    let data = crate::experiments::run_het_lat_sweep(options);
    let count_series = data
        .curves
        .iter()
        .map(|curve| {
            Series::new(
                curve.label.clone(),
                data.x_values
                    .iter()
                    .zip(&curve.solved)
                    .map(|(&x, &count)| (x, count as f64))
                    .collect(),
            )
        })
        .collect();
    let failure_series = data
        .curves
        .iter()
        .map(|curve| {
            Series::new(
                curve.label.clone(),
                data.x_values
                    .iter()
                    .zip(&curve.avg_failure)
                    .map(|(&x, &failure)| (x, failure))
                    .collect(),
            )
        })
        .collect();
    vec![
        FigureResult {
            id: "fig_het_lat_count".to_string(),
            title: "Number of solutions under P = 0.75 W/s_max: latency-aware DP vs \
                    heuristics on 3-class heterogeneous platforms"
                .to_string(),
            x_label: "Bound on latency".to_string(),
            y_label: "Number of solutions".to_string(),
            num_instances: data.num_instances,
            series: count_series,
        },
        FigureResult {
            id: "fig_het_lat_failure".to_string(),
            title: "Average failure rate under P = 0.75 W/s_max: latency-aware DP vs \
                    heuristics on 3-class heterogeneous platforms"
                .to_string(),
            x_label: "Bound on latency".to_string(),
            y_label: "Average failure probability".to_string(),
            num_instances: data.num_instances,
            series: failure_series,
        },
    ]
}

/// Runs every experiment once and returns all ten figures (the two views of
/// each experiment are extracted from the same run).
pub fn run_all(options: &SweepOptions) -> Vec<FigureResult> {
    let mut results = Vec::with_capacity(10);
    for pair in [
        (FigureId::Fig6, FigureId::Fig7),
        (FigureId::Fig8, FigureId::Fig9),
        (FigureId::Fig10, FigureId::Fig11),
        (FigureId::Fig12, FigureId::Fig13),
        (FigureId::Fig14, FigureId::Fig15),
    ] {
        let data = pair.0.spec().run(options);
        results.push(extract(pair.0, &data));
        results.push(extract(pair.1, &data));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_round_trips() {
        for id in FigureId::all() {
            assert_eq!(FigureId::from_number(id.number()), Some(id));
            assert_eq!(id.sibling().sibling(), id);
        }
        assert_eq!(FigureId::from_number(5), None);
        assert_eq!(FigureId::from_number(16), None);
        assert_eq!(FigureId::Fig6.id(), "fig06");
        assert_eq!(FigureId::Fig15.id(), "fig15");
        assert_eq!(FigureId::all().len(), 10);
    }

    #[test]
    fn siblings_share_the_same_experiment() {
        for id in FigureId::all() {
            assert_eq!(id.spec(), id.sibling().spec());
            assert_ne!(id.view(), id.sibling().view());
        }
    }

    #[test]
    fn run_figure_produces_expected_series() {
        let options = SweepOptions {
            num_instances: 3,
            seed: 99,
        };
        let fig6 = run_figure(FigureId::Fig6, &options);
        assert_eq!(fig6.id, "fig06");
        assert_eq!(fig6.series.len(), 3);
        assert_eq!(fig6.num_instances, 3);
        assert!(fig6.series_by_label("ILP").is_some());
        assert!(fig6.series_by_label("Heur-L").is_some());
        assert!(fig6.series_by_label("Heur-P").is_some());
        assert_eq!(fig6.x_values().len(), 20);
        // Solution counts are integers within [0, 3].
        for series in &fig6.series {
            for y in series.ys() {
                assert!((0.0..=3.0).contains(&y));
                assert_eq!(y.fract(), 0.0);
            }
        }
    }

    #[test]
    fn failure_view_yields_probabilities() {
        let options = SweepOptions {
            num_instances: 3,
            seed: 99,
        };
        let fig7 = run_figure(FigureId::Fig7, &options);
        assert_eq!(fig7.series.len(), 3);
        for series in &fig7.series {
            for y in series.ys() {
                assert!(y.is_nan() || (0.0..=1.0).contains(&y));
            }
        }
    }

    #[test]
    fn het_dp_figures_compare_dp_and_greedy() {
        let options = SweepOptions {
            num_instances: 2,
            seed: 5,
        };
        let figures = run_het_dp_figures(&options);
        assert_eq!(figures.len(), 2);
        assert_eq!(figures[0].id, "fig_het_count");
        assert_eq!(figures[1].id, "fig_het_failure");
        for figure in &figures {
            assert!(figure.series_by_label("Het-DP").is_some());
            assert!(figure.series_by_label("Greedy").is_some());
            assert_eq!(figure.num_instances, 2);
        }
    }

    #[test]
    fn het_lat_figures_compare_dp_and_heuristics() {
        let options = SweepOptions {
            num_instances: 2,
            seed: 5,
        };
        let figures = run_het_lat_figures(&options);
        assert_eq!(figures.len(), 2);
        assert_eq!(figures[0].id, "fig_het_lat_count");
        assert_eq!(figures[1].id, "fig_het_lat_failure");
        for figure in &figures {
            assert!(figure.series_by_label("Het-DP-Lat").is_some());
            assert!(figure.series_by_label("Heur-L").is_some());
            assert!(figure.series_by_label("Heur-P").is_some());
            assert_eq!(figure.x_label, "Bound on latency");
            assert_eq!(figure.num_instances, 2);
        }
    }

    #[test]
    fn heterogeneous_figures_have_four_series() {
        let options = SweepOptions {
            num_instances: 2,
            seed: 5,
        };
        let fig12 = run_figure(FigureId::Fig12, &options);
        assert_eq!(fig12.series.len(), 4);
        assert!(fig12.series_by_label("Heur-P_HET").is_some());
        assert!(fig12.series_by_label("Heur-L_HOM").is_some());
    }
}
