//! The five experiments behind Figures 6–15.
//!
//! Each experiment fixes one bound (or ties it to the swept one), sweeps the
//! other, and reports per method and per sweep point (i) the number of
//! instances for which a feasible mapping was found, and (ii) the average
//! failure probability of the mappings found (averaged over the instances the
//! method solved, as in the paper).

use rayon::prelude::*;
use rpo_algorithms::exact::ProfileSet;
use rpo_algorithms::{
    algo_het_lat_with_oracle, algo_het_with_oracle, run_heuristic_with_oracle, HeuristicConfig,
    IntervalHeuristic,
};
use rpo_model::{IntervalOracle, Platform};
use rpo_workload::{ExperimentInstance, InstanceGenerator};
use serde::{Deserialize, Serialize};

/// Options shared by every experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Number of random instances (the paper uses 100).
    pub num_instances: usize,
    /// Base seed for the instance generator.
    pub seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            num_instances: 100,
            seed: 20100613,
        }
    }
}

/// One method curve of an experiment: per sweep point, the number of solved
/// instances and the average failure probability of the solved instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodCurve {
    /// Method label (`"ILP"`, `"Heur-L"`, `"Heur-P"`, `"Heur-L_HET"`, …).
    pub label: String,
    /// Number of solved instances per sweep point.
    pub solved: Vec<usize>,
    /// Average failure probability per sweep point (NaN when nothing solved).
    pub avg_failure: Vec<f64>,
}

/// The raw result of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentData {
    /// Swept x values (period or latency bounds).
    pub x_values: Vec<f64>,
    /// Per-method curves.
    pub curves: Vec<MethodCurve>,
    /// Number of instances per point.
    pub num_instances: usize,
}

/// How the (period, latency) bound pair is derived from the swept value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BoundRule {
    /// Sweep the period bound, keep the latency bound fixed.
    SweepPeriodFixedLatency {
        /// The fixed latency bound.
        latency: f64,
    },
    /// Sweep the latency bound, keep the period bound fixed.
    SweepLatencyFixedPeriod {
        /// The fixed period bound.
        period: f64,
    },
    /// Sweep the period bound with the latency bound tied to it (`L = ratio·P`).
    SweepPeriodProportionalLatency {
        /// The latency/period ratio.
        ratio: f64,
    },
}

impl BoundRule {
    /// The `(period_bound, latency_bound)` pair for a swept value `x`.
    pub fn bounds(&self, x: f64) -> (f64, f64) {
        match *self {
            BoundRule::SweepPeriodFixedLatency { latency } => (x, latency),
            BoundRule::SweepLatencyFixedPeriod { period } => (period, x),
            BoundRule::SweepPeriodProportionalLatency { ratio } => (x, ratio * x),
        }
    }

    /// Whether the swept value is a period (`true`) or a latency (`false`).
    pub fn sweeps_period(&self) -> bool {
        !matches!(self, BoundRule::SweepLatencyFixedPeriod { .. })
    }
}

/// Definition of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Short name, used in logs.
    pub name: String,
    /// Swept values.
    pub x_values: Vec<f64>,
    /// Bound derivation rule.
    pub rule: BoundRule,
    /// Whether this is a heterogeneous-platform experiment (Figures 12–15).
    pub heterogeneous: bool,
}

/// Inclusive range with a fixed step.
pub(crate) fn sweep(from: f64, to: f64, step: f64) -> Vec<f64> {
    let mut values = Vec::new();
    let mut x = from;
    while x <= to + 1e-9 {
        values.push(x);
        x += step;
    }
    values
}

impl ExperimentSpec {
    /// Figures 6 and 7: homogeneous, latency fixed to 750, period swept.
    pub fn homogeneous_period_sweep() -> Self {
        ExperimentSpec {
            name: "homogeneous period sweep (L = 750)".to_string(),
            x_values: sweep(25.0, 500.0, 25.0),
            rule: BoundRule::SweepPeriodFixedLatency { latency: 750.0 },
            heterogeneous: false,
        }
    }

    /// Figures 8 and 9: homogeneous, period fixed to 250, latency swept.
    pub fn homogeneous_latency_sweep() -> Self {
        ExperimentSpec {
            name: "homogeneous latency sweep (P = 250)".to_string(),
            x_values: sweep(400.0, 1100.0, 50.0),
            rule: BoundRule::SweepLatencyFixedPeriod { period: 250.0 },
            heterogeneous: false,
        }
    }

    /// Figures 10 and 11: homogeneous, `L = 3 P`, period swept.
    pub fn homogeneous_proportional_sweep() -> Self {
        ExperimentSpec {
            name: "homogeneous proportional sweep (L = 3P)".to_string(),
            x_values: sweep(150.0, 350.0, 10.0),
            rule: BoundRule::SweepPeriodProportionalLatency { ratio: 3.0 },
            heterogeneous: false,
        }
    }

    /// Figures 12 and 13: heterogeneous vs speed-5 homogeneous, latency fixed
    /// to 150, period swept.
    pub fn heterogeneous_period_sweep() -> Self {
        ExperimentSpec {
            name: "heterogeneous period sweep (L = 150)".to_string(),
            x_values: sweep(10.0, 150.0, 10.0),
            rule: BoundRule::SweepPeriodFixedLatency { latency: 150.0 },
            heterogeneous: true,
        }
    }

    /// Figures 14 and 15: heterogeneous vs speed-5 homogeneous, period fixed
    /// to 50, latency swept.
    pub fn heterogeneous_latency_sweep() -> Self {
        ExperimentSpec {
            name: "heterogeneous latency sweep (P = 50)".to_string(),
            x_values: sweep(50.0, 250.0, 10.0),
            rule: BoundRule::SweepLatencyFixedPeriod { period: 50.0 },
            heterogeneous: true,
        }
    }

    /// Runs the experiment.
    pub fn run(&self, options: &SweepOptions) -> ExperimentData {
        let generator = if self.heterogeneous {
            InstanceGenerator::paper_heterogeneous(options.seed)
        } else {
            InstanceGenerator::paper_homogeneous(options.seed)
        };
        let instances = generator.batch(options.num_instances);
        if self.heterogeneous {
            run_heterogeneous(self, &instances)
        } else {
            run_homogeneous(self, &instances)
        }
    }
}

/// Reliability found by one heuristic on one platform under given bounds,
/// reading every interval metric from the instance's shared oracle (one
/// oracle per `(chain, platform)` across the whole bound sweep).
fn heuristic_reliability(
    oracle: &IntervalOracle,
    instance: &ExperimentInstance,
    platform: &Platform,
    heuristic: IntervalHeuristic,
    period: f64,
    latency: f64,
) -> Option<f64> {
    run_heuristic_with_oracle(
        oracle,
        &instance.chain,
        platform,
        &HeuristicConfig {
            interval_heuristic: heuristic,
            period_bound: period,
            latency_bound: latency,
        },
    )
    .ok()
    .map(|solution| solution.evaluation.reliability)
}

/// Aggregates per-instance, per-point reliabilities into a [`MethodCurve`].
fn aggregate(label: &str, per_instance: &[Vec<Option<f64>>], num_points: usize) -> MethodCurve {
    let mut solved = vec![0usize; num_points];
    let mut failure_sum = vec![0.0f64; num_points];
    for instance in per_instance {
        for (point, value) in instance.iter().enumerate() {
            if let Some(reliability) = value {
                solved[point] += 1;
                failure_sum[point] += 1.0 - reliability;
            }
        }
    }
    let avg_failure = solved
        .iter()
        .zip(&failure_sum)
        .map(|(&count, &sum)| {
            if count == 0 {
                f64::NAN
            } else {
                sum / count as f64
            }
        })
        .collect();
    MethodCurve {
        label: label.to_string(),
        solved,
        avg_failure,
    }
}

/// Homogeneous experiments: the exact optimum (the paper's ILP curve, computed
/// here with the partition-profile exact solver) plus Heur-L and Heur-P.
fn run_homogeneous(spec: &ExperimentSpec, instances: &[ExperimentInstance]) -> ExperimentData {
    let num_points = spec.x_values.len();
    let results: Vec<[Vec<Option<f64>>; 3]> = instances
        .par_iter()
        .map(|instance| {
            let platform = &instance.homogeneous;
            let oracle = IntervalOracle::new(&instance.chain, platform);
            let profiles = ProfileSet::build_with_oracle(&oracle, platform)
                .expect("homogeneous platform by construction");
            let mut optimal = Vec::with_capacity(num_points);
            let mut heur_l = Vec::with_capacity(num_points);
            let mut heur_p = Vec::with_capacity(num_points);
            for &x in &spec.x_values {
                let (period, latency) = spec.rule.bounds(x);
                optimal.push(profiles.best_reliability_under(period, latency));
                heur_l.push(heuristic_reliability(
                    &oracle,
                    instance,
                    platform,
                    IntervalHeuristic::MinLatency,
                    period,
                    latency,
                ));
                heur_p.push(heuristic_reliability(
                    &oracle,
                    instance,
                    platform,
                    IntervalHeuristic::MinPeriod,
                    period,
                    latency,
                ));
            }
            [optimal, heur_l, heur_p]
        })
        .collect();

    let optimal: Vec<Vec<Option<f64>>> = results.iter().map(|r| r[0].clone()).collect();
    let heur_l: Vec<Vec<Option<f64>>> = results.iter().map(|r| r[1].clone()).collect();
    let heur_p: Vec<Vec<Option<f64>>> = results.iter().map(|r| r[2].clone()).collect();

    ExperimentData {
        x_values: spec.x_values.clone(),
        curves: vec![
            aggregate("ILP", &optimal, num_points),
            aggregate("Heur-L", &heur_l, num_points),
            aggregate("Heur-P", &heur_p, num_points),
        ],
        num_instances: instances.len(),
    }
}

/// Heterogeneous experiments: Heur-L and Heur-P on the heterogeneous platform
/// and on the speed-5 homogeneous comparison platform.
fn run_heterogeneous(spec: &ExperimentSpec, instances: &[ExperimentInstance]) -> ExperimentData {
    let num_points = spec.x_values.len();
    let results: Vec<[Vec<Option<f64>>; 4]> = instances
        .par_iter()
        .map(|instance| {
            let het_oracle = IntervalOracle::new(&instance.chain, &instance.heterogeneous);
            let hom_oracle = IntervalOracle::new(&instance.chain, &instance.homogeneous);
            let mut curves: [Vec<Option<f64>>; 4] = Default::default();
            for &x in &spec.x_values {
                let (period, latency) = spec.rule.bounds(x);
                let cases = [
                    (
                        &het_oracle,
                        &instance.heterogeneous,
                        IntervalHeuristic::MinLatency,
                    ),
                    (
                        &het_oracle,
                        &instance.heterogeneous,
                        IntervalHeuristic::MinPeriod,
                    ),
                    (
                        &hom_oracle,
                        &instance.homogeneous,
                        IntervalHeuristic::MinLatency,
                    ),
                    (
                        &hom_oracle,
                        &instance.homogeneous,
                        IntervalHeuristic::MinPeriod,
                    ),
                ];
                for (slot, (oracle, platform, heuristic)) in cases.into_iter().enumerate() {
                    curves[slot].push(heuristic_reliability(
                        oracle, instance, platform, heuristic, period, latency,
                    ));
                }
            }
            curves
        })
        .collect();

    let labels = ["Heur-L_HET", "Heur-P_HET", "Heur-L_HOM", "Heur-P_HOM"];
    let curves = labels
        .iter()
        .enumerate()
        .map(|(slot, label)| {
            let per_instance: Vec<Vec<Option<f64>>> =
                results.iter().map(|r| r[slot].clone()).collect();
            aggregate(label, &per_instance, num_points)
        })
        .collect();

    ExperimentData {
        x_values: spec.x_values.clone(),
        curves,
        num_instances: instances.len(),
    }
}

/// The class-structured heterogeneous period sweep: the exact class-level DP
/// (`algo_het`) against the Section 7.2 greedy pipeline, on the paper's
/// 10-processor platform restricted to three processor classes. Sweeps the
/// period bound over the Figure 12 range with no latency bound (the DP
/// optimizes reliability under a period bound only).
pub fn run_het_dp_sweep(options: &SweepOptions) -> ExperimentData {
    let generator = InstanceGenerator::paper_heterogeneous_classes(options.seed);
    let instances = generator.batch(options.num_instances);
    let x_values = sweep(10.0, 150.0, 10.0);
    let num_points = x_values.len();

    let results: Vec<[Vec<Option<f64>>; 2]> = instances
        .par_iter()
        .map(|instance| {
            let platform = &instance.heterogeneous;
            let oracle = IntervalOracle::new(&instance.chain, platform);
            let mut dp = Vec::with_capacity(num_points);
            let mut greedy = Vec::with_capacity(num_points);
            for &x in &x_values {
                // One solve serves both curves: algo_het runs the greedy
                // pipeline internally (fallback + pruner) and reports its
                // reliability alongside the DP's.
                match algo_het_with_oracle(&oracle, &instance.chain, platform, Some(x)) {
                    Ok(solution) => {
                        dp.push(Some(solution.reliability));
                        greedy.push(solution.greedy_reliability);
                    }
                    Err(_) => {
                        // algo_het fails only when the greedy failed too.
                        dp.push(None);
                        greedy.push(None);
                    }
                }
            }
            [dp, greedy]
        })
        .collect();

    let dp: Vec<Vec<Option<f64>>> = results.iter().map(|r| r[0].clone()).collect();
    let greedy: Vec<Vec<Option<f64>>> = results.iter().map(|r| r[1].clone()).collect();
    ExperimentData {
        x_values,
        curves: vec![
            aggregate("Het-DP", &dp, num_points),
            aggregate("Greedy", &greedy, num_points),
        ],
        num_instances: instances.len(),
    }
}

/// The latency-aware class-structured heterogeneous sweep: the exact
/// latency DP (`algo_het_lat`) against the Section 7 heuristics under
/// **both** real-time bounds, on the paper's 10-processor platform
/// restricted to three processor classes. The latency bound sweeps the
/// Figure 14/15 range (50 … 250); the period bound is the tight
/// `BENCH_het.json` regime (`0.75 × W / s_max` per instance — a loose
/// absolute period saturates every mapping at full replication and ties all
/// curves at reliability ≈ 1).
pub fn run_het_lat_sweep(options: &SweepOptions) -> ExperimentData {
    let generator = InstanceGenerator::paper_heterogeneous_classes(options.seed);
    let instances = generator.batch(options.num_instances);
    let x_values = sweep(50.0, 250.0, 10.0);
    let num_points = x_values.len();

    let results: Vec<[Vec<Option<f64>>; 3]> = instances
        .par_iter()
        .map(|instance| {
            let platform = &instance.heterogeneous;
            let period = 0.75 * instance.chain.total_work() / platform.max_speed();
            let oracle = IntervalOracle::new(&instance.chain, platform);
            let mut dp = Vec::with_capacity(num_points);
            let mut heur_l = Vec::with_capacity(num_points);
            let mut heur_p = Vec::with_capacity(num_points);
            for &latency in &x_values {
                dp.push(
                    algo_het_lat_with_oracle(
                        &oracle,
                        &instance.chain,
                        platform,
                        Some(period),
                        latency,
                    )
                    .ok()
                    .map(|solution| solution.reliability),
                );
                heur_l.push(heuristic_reliability(
                    &oracle,
                    instance,
                    platform,
                    IntervalHeuristic::MinLatency,
                    period,
                    latency,
                ));
                heur_p.push(heuristic_reliability(
                    &oracle,
                    instance,
                    platform,
                    IntervalHeuristic::MinPeriod,
                    period,
                    latency,
                ));
            }
            [dp, heur_l, heur_p]
        })
        .collect();

    let labels = ["Het-DP-Lat", "Heur-L", "Heur-P"];
    let curves = labels
        .iter()
        .enumerate()
        .map(|(slot, label)| {
            let per_instance: Vec<Vec<Option<f64>>> =
                results.iter().map(|r| r[slot].clone()).collect();
            aggregate(label, &per_instance, num_points)
        })
        .collect();
    ExperimentData {
        x_values,
        curves,
        num_instances: instances.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_options() -> SweepOptions {
        SweepOptions {
            num_instances: 4,
            seed: 7,
        }
    }

    #[test]
    fn sweep_generates_inclusive_ranges() {
        assert_eq!(sweep(1.0, 3.0, 1.0), vec![1.0, 2.0, 3.0]);
        assert_eq!(sweep(10.0, 10.0, 5.0), vec![10.0]);
        assert_eq!(sweep(0.0, 1.0, 0.25).len(), 5);
    }

    #[test]
    fn bound_rules_derive_the_right_pairs() {
        assert_eq!(
            BoundRule::SweepPeriodFixedLatency { latency: 750.0 }.bounds(100.0),
            (100.0, 750.0)
        );
        assert_eq!(
            BoundRule::SweepLatencyFixedPeriod { period: 250.0 }.bounds(600.0),
            (250.0, 600.0)
        );
        assert_eq!(
            BoundRule::SweepPeriodProportionalLatency { ratio: 3.0 }.bounds(200.0),
            (200.0, 600.0)
        );
        assert!(BoundRule::SweepPeriodFixedLatency { latency: 1.0 }.sweeps_period());
        assert!(!BoundRule::SweepLatencyFixedPeriod { period: 1.0 }.sweeps_period());
    }

    #[test]
    fn homogeneous_experiment_produces_consistent_curves() {
        let spec = ExperimentSpec {
            name: "test".to_string(),
            x_values: sweep(100.0, 500.0, 100.0),
            rule: BoundRule::SweepPeriodFixedLatency { latency: 750.0 },
            heterogeneous: false,
        };
        let options = small_options();
        let data = spec.run(&options);
        assert_eq!(data.curves.len(), 3);
        assert_eq!(data.num_instances, 4);
        let ilp = &data.curves[0];
        assert_eq!(ilp.label, "ILP");
        for curve in &data.curves {
            assert_eq!(curve.solved.len(), data.x_values.len());
            // No method can solve more instances than there are.
            assert!(curve.solved.iter().all(|&s| s <= 4));
            // Failure probabilities are probabilities (or NaN when unsolved).
            assert!(curve
                .avg_failure
                .iter()
                .all(|f| f.is_nan() || (0.0..=1.0).contains(f)));
        }
        // The exact optimum solves at least as many instances as any heuristic,
        // at every sweep point.
        for heuristic in &data.curves[1..] {
            for (point, &solved) in heuristic.solved.iter().enumerate() {
                assert!(
                    ilp.solved[point] >= solved,
                    "{} solves more than the optimum at point {point}",
                    heuristic.label
                );
            }
        }
        // The optimum's solved counts are monotone in the period bound.
        for window in ilp.solved.windows(2) {
            assert!(window[1] >= window[0]);
        }
    }

    #[test]
    fn heterogeneous_experiment_produces_four_curves() {
        let spec = ExperimentSpec {
            name: "test het".to_string(),
            x_values: sweep(50.0, 150.0, 50.0),
            rule: BoundRule::SweepPeriodFixedLatency { latency: 150.0 },
            heterogeneous: true,
        };
        let data = spec.run(&small_options());
        assert_eq!(data.curves.len(), 4);
        let labels: Vec<&str> = data.curves.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["Heur-L_HET", "Heur-P_HET", "Heur-L_HOM", "Heur-P_HOM"]
        );
        for curve in &data.curves {
            assert!(curve.solved.iter().all(|&s| s <= 4));
        }
    }

    #[test]
    fn het_dp_sweep_never_trails_the_greedy_curve() {
        let data = run_het_dp_sweep(&small_options());
        assert_eq!(data.curves.len(), 2);
        let dp = &data.curves[0];
        let greedy = &data.curves[1];
        assert_eq!(dp.label, "Het-DP");
        assert_eq!(greedy.label, "Greedy");
        for point in 0..data.x_values.len() {
            // The DP solves at least as many instances as the greedy, and
            // (being exact ≥ greedy per instance) never averages worse on
            // the instances both solve.
            assert!(
                dp.solved[point] >= greedy.solved[point],
                "point {point}: DP solved {} < greedy {}",
                dp.solved[point],
                greedy.solved[point]
            );
            if dp.solved[point] == greedy.solved[point] && dp.solved[point] > 0 {
                assert!(
                    dp.avg_failure[point] <= greedy.avg_failure[point] + 1e-15,
                    "point {point}: DP failure {} above greedy {}",
                    dp.avg_failure[point],
                    greedy.avg_failure[point]
                );
            }
        }
    }

    #[test]
    fn het_lat_sweep_never_trails_either_heuristic() {
        let data = run_het_lat_sweep(&small_options());
        assert_eq!(data.curves.len(), 3);
        let dp = &data.curves[0];
        assert_eq!(dp.label, "Het-DP-Lat");
        for heuristic in &data.curves[1..] {
            for point in 0..data.x_values.len() {
                // The DP solves at least as many instances as each
                // heuristic (it is exact-or-better per instance under both
                // bounds), and never averages worse when they solve the
                // same set.
                assert!(
                    dp.solved[point] >= heuristic.solved[point],
                    "point {point}: DP solved {} < {} {}",
                    dp.solved[point],
                    heuristic.label,
                    heuristic.solved[point]
                );
                if dp.solved[point] == heuristic.solved[point] && dp.solved[point] > 0 {
                    assert!(
                        dp.avg_failure[point] <= heuristic.avg_failure[point] + 1e-15,
                        "point {point}: DP failure {} above {} {}",
                        dp.avg_failure[point],
                        heuristic.label,
                        heuristic.avg_failure[point]
                    );
                }
            }
        }
        // Solution counts are monotone in the latency bound.
        for window in dp.solved.windows(2) {
            assert!(window[1] >= window[0]);
        }
    }

    #[test]
    fn paper_specs_have_the_expected_shape() {
        assert!(!ExperimentSpec::homogeneous_period_sweep().heterogeneous);
        assert!(!ExperimentSpec::homogeneous_latency_sweep().heterogeneous);
        assert!(!ExperimentSpec::homogeneous_proportional_sweep().heterogeneous);
        assert!(ExperimentSpec::heterogeneous_period_sweep().heterogeneous);
        assert!(ExperimentSpec::heterogeneous_latency_sweep().heterogeneous);
        assert_eq!(
            ExperimentSpec::homogeneous_period_sweep().x_values.len(),
            20
        );
        assert_eq!(SweepOptions::default().num_instances, 100);
    }
}
