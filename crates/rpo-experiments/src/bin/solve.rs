//! Command-line solver for one concrete problem described in JSON.
//!
//! ```text
//! solve path/to/problem.json          # read from a file
//! solve -                             # read from standard input
//! solve --example                     # print an example problem file
//! ```
//!
//! The answer (both heuristics plus, on homogeneous platforms, the exact
//! optimum) is printed as JSON on standard output.

use std::io::Read as _;
use std::process::ExitCode;

use rpo_experiments::problem_io::{report_to_json, solve, ProblemSpec};

const EXAMPLE: &str = r#"{
  "tasks": [
    {"work": 30, "output_size": 2},
    {"work": 10, "output_size": 8},
    {"work": 25, "output_size": 1},
    {"work": 40}
  ],
  "platform": {
    "processors": [
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6}
    ],
    "bandwidth": 1,
    "link_failure_rate": 1e-7,
    "max_replication": 2
  },
  "period_bound": 70,
  "latency_bound": 130
}"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag] if flag == "--example" => {
            println!("{EXAMPLE}");
            ExitCode::SUCCESS
        }
        [path] => {
            let text = if path == "-" {
                let mut buffer = String::new();
                if let Err(error) = std::io::stdin().read_to_string(&mut buffer) {
                    eprintln!("failed to read standard input: {error}");
                    return ExitCode::FAILURE;
                }
                buffer
            } else {
                match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(error) => {
                        eprintln!("failed to read {path}: {error}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let spec = match ProblemSpec::from_json(&text) {
                Ok(spec) => spec,
                Err(message) => {
                    eprintln!("{message}");
                    return ExitCode::FAILURE;
                }
            };
            match solve(&spec) {
                Ok(report) => {
                    println!("{}", report_to_json(&report));
                    ExitCode::SUCCESS
                }
                Err(message) => {
                    eprintln!("{message}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: solve <problem.json | -> | solve --example");
            ExitCode::FAILURE
        }
    }
}
