//! Command-line solver for one concrete problem described in JSON.
//!
//! ```text
//! solve path/to/problem.json          # read from a file
//! solve -                             # read from standard input
//! solve --example                     # print an example problem file
//! solve portfolio path/to/problem.json  # race the whole solver portfolio
//! solve portfolio -                     # ... reading from standard input
//! ```
//!
//! The default mode prints both heuristics plus, on homogeneous platforms,
//! the exact optimum. The `portfolio` subcommand instead races every
//! applicable backend in parallel and prints the merged tri-criteria Pareto
//! front (reliability, worst-case period, worst-case latency), with the
//! per-backend run/skip census.

use std::io::Read as _;
use std::process::ExitCode;

use rpo_experiments::problem_io::{
    portfolio_report_to_json, report_to_json, solve, solve_portfolio, ProblemSpec,
};

const EXAMPLE: &str = r#"{
  "tasks": [
    {"work": 30, "output_size": 2},
    {"work": 10, "output_size": 8},
    {"work": 25, "output_size": 1},
    {"work": 40}
  ],
  "platform": {
    "processors": [
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6}
    ],
    "bandwidth": 1,
    "link_failure_rate": 1e-7,
    "max_replication": 2
  },
  "period_bound": 70,
  "latency_bound": 130
}"#;

const USAGE: &str =
    "usage: solve <problem.json | -> | solve --example | solve portfolio <problem.json | ->";

fn read_problem(path: &str) -> Result<ProblemSpec, String> {
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|error| format!("failed to read standard input: {error}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|error| format!("failed to read {path}: {error}"))?
    };
    ProblemSpec::from_json(&text)
}

fn run(path: &str, portfolio: bool) -> Result<String, String> {
    let spec = read_problem(path)?;
    if portfolio {
        solve_portfolio(&spec).map(|report| portfolio_report_to_json(&report))
    } else {
        solve(&spec).map(|report| report_to_json(&report))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.as_slice() {
        [flag] if flag == "--example" => {
            println!("{EXAMPLE}");
            return ExitCode::SUCCESS;
        }
        [subcommand, path] if subcommand == "portfolio" => run(path, true),
        [path] if path != "portfolio" => run(path, false),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
