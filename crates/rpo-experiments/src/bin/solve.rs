//! Command-line solver for one concrete problem described in JSON.
//!
//! ```text
//! solve path/to/problem.json          # read from a file
//! solve -                             # read from standard input
//! solve --example                     # print an example problem file
//! solve portfolio path/to/problem.json  # race the whole solver portfolio
//! solve portfolio -                     # ... reading from standard input
//! solve batch <count> [--seed N] [--het] [--workers N] [--bucketed]  # drive a generated batch
//! solve repair <count> [--churn] [--seed N] [--het] [--workers N]    # replay platform churn
//! solve serve [--tcp ADDR] [--workers N] [--queue N] [--deadline-ms F]  # long-lived service
//! ```
//!
//! The default mode prints both heuristics plus, on homogeneous platforms,
//! the exact optimum. The `portfolio` subcommand instead races every
//! applicable backend in parallel and prints the merged tri-criteria Pareto
//! front (reliability, worst-case period, worst-case latency), with the
//! per-backend run/skip census. The `batch` subcommand streams `count`
//! paper-style generated instances through the batch driver and prints the
//! throughput/win-rate report. The `repair` subcommand opens one live
//! repair session per generated instance and replays a seeded platform-churn
//! trace through the graded repair ladder (local patch → warm DP → full
//! solve), printing the per-tier census and the repair-vs-cold-solve
//! latency; `--churn` switches from the paper's natural failure model to an
//! aggressive short-horizon trace with a mid-run kill burst. The `serve`
//! subcommand starts the long-lived solver service (`rpo-serve`): one JSON
//! request per stdin line, one JSON response per stdout line (or the same
//! protocol over TCP with `--tcp ADDR`), with bounded-queue admission
//! control, per-request deadlines, and duplicate coalescing.
//!
//! Observability flags (all modes):
//!
//! * `--trace <path>` (or `--trace=<path>`) — write the recorded span trace
//!   as JSON Lines, one span object per line;
//! * `--collapse <path>` — write the collapsed-stack export (flamegraph.pl
//!   input) of the same spans;
//! * `--report-json <path>` — `batch` only: write the full serialized
//!   [`BatchReport`](rpo_portfolio::BatchReport), embedded
//!   `MetricsSnapshot` included, for machine-to-machine diffing.

use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rpo_experiments::problem_io::{
    portfolio_report_to_json, report_to_json, solve, solve_portfolio, ProblemSpec,
};
use rpo_portfolio::{BatchConfig, BatchDriver, ChurnConfig, PortfolioEngine};
use rpo_serve::{serve_lines, ServeConfig, SolverService, TcpServer};
use rpo_workload::{ChurnSpec, InstanceGenerator};

const EXAMPLE: &str = r#"{
  "tasks": [
    {"work": 30, "output_size": 2},
    {"work": 10, "output_size": 8},
    {"work": 25, "output_size": 1},
    {"work": 40}
  ],
  "platform": {
    "processors": [
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6},
      {"speed": 1, "failure_rate": 1e-6}
    ],
    "bandwidth": 1,
    "link_failure_rate": 1e-7,
    "max_replication": 2
  },
  "period_bound": 70,
  "latency_bound": 130
}"#;

const USAGE: &str = "usage: solve <problem.json | -> | solve --example \
     | solve portfolio <problem.json | -> \
     | solve batch <count> [--seed N] [--het] [--workers N] [--bucketed] \
     [--report-json <path>] \
     | solve repair <count> [--churn] [--seed N] [--het] [--workers N] \
     [--report-json <path>] \
     | solve serve [--tcp ADDR] [--workers N] [--queue N] [--deadline-ms F]\n\
     observability: [--trace <path>] [--collapse <path>] on any mode";

/// Observability/output options shared by every mode.
#[derive(Default)]
struct ObsArgs {
    trace: Option<String>,
    collapse: Option<String>,
    report_json: Option<String>,
    seed: u64,
    workers: Option<usize>,
    heterogeneous: bool,
    bucketed: bool,
    churn: bool,
    tcp: Option<String>,
    queue: Option<usize>,
    deadline_ms: Option<f64>,
}

/// Strips the flag arguments out of `args`, returning the remaining
/// positional arguments.
fn parse_flags(args: Vec<String>) -> Result<(Vec<String>, ObsArgs), String> {
    let mut obs = ObsArgs {
        seed: 2024,
        ..ObsArgs::default()
    };
    let mut positional = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut flag_value = |name: &str, inline: Option<&str>| -> Result<String, String> {
            match inline {
                Some(value) => Ok(value.to_string()),
                None => iter
                    .next()
                    .ok_or_else(|| format!("{name} requires a value")),
            }
        };
        match arg.split_once('=') {
            Some(("--trace", value)) => obs.trace = Some(value.to_string()),
            Some(("--collapse", value)) => obs.collapse = Some(value.to_string()),
            Some(("--report-json", value)) => obs.report_json = Some(value.to_string()),
            Some(("--seed", value)) => {
                obs.seed = value.parse().map_err(|_| "invalid --seed".to_string())?;
            }
            Some(("--workers", value)) => {
                obs.workers = Some(value.parse().map_err(|_| "invalid --workers".to_string())?);
            }
            Some(("--tcp", value)) => obs.tcp = Some(value.to_string()),
            Some(("--queue", value)) => {
                obs.queue = Some(value.parse().map_err(|_| "invalid --queue".to_string())?);
            }
            Some(("--deadline-ms", value)) => {
                obs.deadline_ms = Some(
                    value
                        .parse()
                        .map_err(|_| "invalid --deadline-ms".to_string())?,
                );
            }
            _ => match arg.as_str() {
                "--trace" => obs.trace = Some(flag_value("--trace", None)?),
                "--collapse" => obs.collapse = Some(flag_value("--collapse", None)?),
                "--report-json" => obs.report_json = Some(flag_value("--report-json", None)?),
                "--seed" => {
                    obs.seed = flag_value("--seed", None)?
                        .parse()
                        .map_err(|_| "invalid --seed".to_string())?;
                }
                "--workers" => {
                    obs.workers = Some(
                        flag_value("--workers", None)?
                            .parse()
                            .map_err(|_| "invalid --workers".to_string())?,
                    );
                }
                "--tcp" => obs.tcp = Some(flag_value("--tcp", None)?),
                "--queue" => {
                    obs.queue = Some(
                        flag_value("--queue", None)?
                            .parse()
                            .map_err(|_| "invalid --queue".to_string())?,
                    );
                }
                "--deadline-ms" => {
                    obs.deadline_ms = Some(
                        flag_value("--deadline-ms", None)?
                            .parse()
                            .map_err(|_| "invalid --deadline-ms".to_string())?,
                    );
                }
                "--het" => obs.heterogeneous = true,
                "--bucketed" => obs.bucketed = true,
                "--churn" => obs.churn = true,
                _ => positional.push(arg),
            },
        }
    }
    Ok((positional, obs))
}

fn read_problem(path: &str) -> Result<ProblemSpec, String> {
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|error| format!("failed to read standard input: {error}"))?;
        buffer
    } else {
        std::fs::read_to_string(path).map_err(|error| format!("failed to read {path}: {error}"))?
    };
    ProblemSpec::from_json(&text)
}

fn run(path: &str, portfolio: bool) -> Result<String, String> {
    let spec = read_problem(path)?;
    if portfolio {
        solve_portfolio(&spec).map(|report| portfolio_report_to_json(&report))
    } else {
        solve(&spec).map(|report| report_to_json(&report))
    }
}

/// Streams `count` generated paper-style instances through the batch driver
/// and returns the human-readable report (writing the machine-readable one
/// to `--report-json` when requested).
fn run_batch(count: usize, obs: &ObsArgs) -> Result<String, String> {
    let generator = if obs.heterogeneous {
        InstanceGenerator::paper_heterogeneous(obs.seed)
    } else {
        InstanceGenerator::paper_homogeneous(obs.seed)
    };
    let engine = PortfolioEngine::default().with_threads(1);
    let mut config = BatchConfig {
        heterogeneous: obs.heterogeneous,
        bucketed: obs.bucketed,
        ..BatchConfig::default()
    };
    if let Some(workers) = obs.workers {
        config.workers = workers.max(1);
    }
    let report = BatchDriver::new(config).run(&engine, generator.stream(count));
    if let Some(path) = &obs.report_json {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|error| format!("failed to serialize report: {error}"))?;
        std::fs::write(path, json).map_err(|error| format!("failed to write {path}: {error}"))?;
    }
    Ok(report.to_string())
}

/// Opens one repair session per generated instance and replays a seeded
/// platform-churn trace through the graded repair ladder.
fn run_repair(count: usize, obs: &ObsArgs) -> Result<String, String> {
    let generator = if obs.heterogeneous {
        InstanceGenerator::paper_heterogeneous(obs.seed)
    } else {
        InstanceGenerator::paper_homogeneous(obs.seed)
    };
    let mut batch = BatchConfig {
        heterogeneous: obs.heterogeneous,
        ..BatchConfig::default()
    };
    if let Some(workers) = obs.workers {
        batch.workers = workers.max(1);
    }
    let config = ChurnConfig {
        spec: if obs.churn {
            // Aggressive mode: a short horizon plus a 3-kill mid-run burst,
            // so every session sees back-to-back repairs.
            ChurnSpec {
                horizon: 1e6,
                max_events: 6,
                min_alive: 2,
                burst_kills: 3,
                burst_at: 0.5,
            }
        } else {
            ChurnSpec::paper()
        },
        seed: obs.seed,
        heterogeneous: obs.heterogeneous,
        period_bound: None,
    };
    let report = BatchDriver::default().run_churn(&batch, &config, generator.stream(count));
    if let Some(path) = &obs.report_json {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|error| format!("failed to serialize report: {error}"))?;
        std::fs::write(path, json).map_err(|error| format!("failed to write {path}: {error}"))?;
    }
    Ok(report.to_string())
}

/// Runs the long-lived solver service: JSON-lines over stdin/stdout by
/// default, or over TCP with `--tcp ADDR` (stdin EOF is the stop signal).
/// Responses stream to stdout; the drain summary goes to stderr so stdout
/// stays machine-parseable.
fn run_serve(obs: &ObsArgs) -> Result<String, String> {
    let engine = Arc::new(PortfolioEngine::default().with_threads(1));
    let mut config = ServeConfig::default();
    if let Some(workers) = obs.workers {
        config.workers = workers;
    }
    if let Some(queue) = obs.queue {
        config.queue_capacity = queue.max(1);
    }
    if let Some(ms) = obs.deadline_ms {
        config.default_deadline = if ms.is_finite() && ms > 0.0 {
            Some(Duration::from_secs_f64(ms / 1000.0))
        } else {
            None
        };
    }
    let service = Arc::new(SolverService::start(engine, config));
    match &obs.tcp {
        Some(addr) => {
            let server = TcpServer::spawn(Arc::clone(&service), addr)
                .map_err(|error| format!("failed to bind {addr}: {error}"))?;
            eprintln!("serving JSON lines on tcp://{}", server.local_addr());
            eprintln!("close standard input (ctrl-D) to stop");
            let mut sink = String::new();
            let _ = std::io::stdin().read_to_string(&mut sink);
            server.stop();
        }
        None => {
            let stdin = std::io::stdin();
            serve_lines(&service, stdin.lock(), std::io::stdout())
                .map_err(|error| format!("stdin serve loop failed: {error}"))?;
        }
    }
    let stats = service.shutdown();
    eprintln!(
        "serve: {} admitted, {} coalesced, {} cache hits, {} shed, {} overloaded, \
         {} rejected draining, {} solves",
        stats.admitted,
        stats.coalesced,
        stats.cache_hits,
        stats.shed,
        stats.overloaded,
        stats.drained,
        stats.solved,
    );
    Ok(String::new())
}

/// Writes the requested trace exports after the work is done.
fn write_obs_outputs(obs: &ObsArgs) -> Result<(), String> {
    if let Some(path) = &obs.trace {
        rpo_obs::recorder()
            .write_jsonl_path(path)
            .map_err(|error| format!("failed to write trace {path}: {error}"))?;
    }
    if let Some(path) = &obs.collapse {
        rpo_obs::recorder()
            .write_collapsed_path(path)
            .map_err(|error| format!("failed to write collapsed stacks {path}: {error}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, obs) = match parse_flags(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match positional.as_slice() {
        [flag] if flag == "--example" => {
            println!("{EXAMPLE}");
            return ExitCode::SUCCESS;
        }
        [subcommand, count] if subcommand == "batch" => match count.parse::<usize>() {
            Ok(count) => run_batch(count, &obs),
            Err(_) => Err(format!("invalid batch size {count:?}")),
        },
        [subcommand, count] if subcommand == "repair" => match count.parse::<usize>() {
            Ok(count) => run_repair(count, &obs),
            Err(_) => Err(format!("invalid repair batch size {count:?}")),
        },
        [subcommand] if subcommand == "serve" => run_serve(&obs),
        [subcommand, path] if subcommand == "portfolio" => run(path, true),
        [path] if path != "portfolio" && path != "batch" && path != "repair" && path != "serve" => {
            run(path, false)
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = outcome.and_then(|output| write_obs_outputs(&obs).map(|()| output));
    match outcome {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
