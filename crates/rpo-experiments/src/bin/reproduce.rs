//! Command-line entry point regenerating the paper's figures.
//!
//! ```text
//! reproduce [--all] [--figure N] [--het] [--het-lat] [--instances I] [--seed S] [--out DIR] [--list]
//! ```
//!
//! Without arguments, `--all` is assumed: the five experiments run once each
//! (in parallel over instances) and the ten figures are printed as console
//! tables and written as CSV files under `--out` (default `results/`).

use std::path::PathBuf;
use std::process::ExitCode;

use rpo_experiments::experiments::SweepOptions;
use rpo_experiments::figures::{
    run_all, run_figure, run_het_dp_figures, run_het_lat_figures, FigureId,
};
use rpo_experiments::{csv, report};

struct Args {
    figures: Vec<FigureId>,
    all: bool,
    het: bool,
    het_lat: bool,
    list: bool,
    options: SweepOptions,
    out_dir: PathBuf,
}

fn usage() -> &'static str {
    "usage: reproduce [--all] [--figure N]... [--het] [--het-lat] [--instances I] [--seed S] \
     [--out DIR] [--list]\n\
     \n\
     --all           run every experiment and emit Figures 6-15 plus the\n\
     \x20               heterogeneous DP-vs-greedy and latency sweeps (default)\n\
     --figure N      run only Figure N (6..=15); may be repeated\n\
     --het           run only the class-level DP vs greedy heterogeneous\n\
     \x20               sweep (fig_het_count / fig_het_failure)\n\
     --het-lat       run only the latency-aware DP vs heuristics sweep\n\
     \x20               (fig_het_lat_count / fig_het_lat_failure)\n\
     --instances I   number of random instances per experiment (default 100)\n\
     --seed S        base seed of the instance generator (default 20100613)\n\
     --out DIR       directory for the CSV files (default results/)\n\
     --list          list the available figures and exit\n"
}

fn parse_args(mut raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        figures: Vec::new(),
        all: false,
        het: false,
        het_lat: false,
        list: false,
        options: SweepOptions::default(),
        out_dir: PathBuf::from("results"),
    };
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--all" => args.all = true,
            "--het" => args.het = true,
            "--het-lat" => args.het_lat = true,
            "--list" => args.list = true,
            "--figure" => {
                let value = raw.next().ok_or("--figure needs a number")?;
                let number: u32 = value
                    .parse()
                    .map_err(|_| format!("invalid figure number: {value}"))?;
                let id = FigureId::from_number(number).ok_or(format!(
                    "figure {number} is not part of the evaluation (6..=15)"
                ))?;
                args.figures.push(id);
            }
            "--instances" => {
                let value = raw.next().ok_or("--instances needs a count")?;
                args.options.num_instances = value
                    .parse()
                    .map_err(|_| format!("invalid instance count: {value}"))?;
            }
            "--seed" => {
                let value = raw.next().ok_or("--seed needs a value")?;
                args.options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--out" => {
                let value = raw.next().ok_or("--out needs a directory")?;
                args.out_dir = PathBuf::from(value);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument: {other}\n\n{}", usage())),
        }
    }
    if args.figures.is_empty() && !args.het && !args.het_lat {
        args.all = true;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for id in FigureId::all() {
            println!("{:>2}  {}", id.number(), id.title());
        }
        println!("het  class-level DP vs greedy heterogeneous sweep (--het)");
        println!("het-lat  latency-aware DP vs heuristics sweep (--het-lat)");
        return ExitCode::SUCCESS;
    }

    let mut results = if args.all {
        eprintln!(
            "running all experiments with {} instances (seed {})",
            args.options.num_instances, args.options.seed
        );
        run_all(&args.options)
    } else {
        args.figures
            .iter()
            .map(|&id| run_figure(id, &args.options))
            .collect()
    };
    if args.all || args.het {
        results.extend(run_het_dp_figures(&args.options));
    }
    if args.all || args.het_lat {
        results.extend(run_het_lat_figures(&args.options));
    }

    for figure in &results {
        report::print_table(figure);
        println!();
        match csv::write_csv(figure, &args.out_dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(error) => {
                eprintln!("failed to write CSV for {}: {error}", figure.id);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
